//! Pass 2 of the semantic analyzer: flow-aware rules over the
//! [`crate::model`] call graph.
//!
//! A bounded fixpoint computes one [`Summary`] per function — may-panic
//! (direct or via a callee), taint-out (returns an untrusted decoder/env
//! value), and param-in sinks (an unguarded index, narrowing cast or
//! allocation fed by a parameter) — then a final emission pass walks each
//! body once more to report HL011/HL012 with call-path context, plus the
//! purely lexical HL013 (parallel-determinism hazards) and HL014
//! (swallowed `Result`s). The analysis is deliberately asymmetric:
//! taint *loses* information at struct fields and unresolved calls
//! (under-approximation, fewer false positives) while guard detection is
//! generous — any lexical comparison, `min`/`clamp`/`%`, or a
//! `len`/`is_empty` mention on the receiver counts (documented in
//! DESIGN.md §8).

use crate::diag::{Diagnostic, Rule};
use crate::model::{find_calls, CallSite, FnId, Model};
use crate::rules::{FileScope, Waiver};
use crate::scanner::{Scanned, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Everything pass 2 needs, borrowed from the engine.
pub struct SemaInput<'a> {
    /// All scanned files, index-aligned with the workspace file list.
    pub scans: &'a [(FileScope, Scanned)],
    /// Per-file test-region line maps.
    pub test_lines: &'a [Vec<bool>],
    /// Per-file parsed waivers (HL007 waivers carry impossibility proofs,
    /// so waived panic sites are not HL011 sources).
    pub waivers: &'a [Vec<Waiver>],
    /// The pass-1 model.
    pub model: &'a Model,
}

/// Why a function may panic.
#[derive(Clone, Debug, PartialEq)]
enum PanicSrc {
    /// An unwaived `unwrap`/`expect`/`panic!` in this body.
    Direct {
        /// What the site is (`` `.unwrap()` `` etc.).
        what: String,
    },
    /// The first callee (in token order) whose summary may panic.
    Via(FnId),
}

/// A sink site recorded in a summary, with the downward call path.
#[derive(Clone, Debug, PartialEq)]
struct Sink {
    file: usize,
    line: u32,
    col: u32,
    what: String,
    /// Display names of intermediate callees, outermost first.
    via: Vec<String>,
}

/// Per-function dataflow summary.
#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    panic: Option<PanicSrc>,
    /// Returns a value derived from an untrusted source (bit width).
    returns_untrusted: Option<u8>,
    /// Param index → first unguarded slice-index sink it reaches.
    param_index_sinks: BTreeMap<usize, Sink>,
    /// Param index → first untrusted-sensitive sink (narrowing cast,
    /// `with_capacity`, `vec![…; n]`) it reaches.
    param_untrusted_sinks: BTreeMap<usize, Sink>,
}

/// Lexical taint of one binding.
#[derive(Clone, Debug, Default, PartialEq)]
struct Taint {
    /// Untrusted source width in bits, if any.
    untrusted: Option<u8>,
    /// Bitmask of the enclosing function's params this value derives from.
    params: u64,
}

impl Taint {
    fn is_clean(&self) -> bool {
        self.untrusted.is_none() && self.params == 0
    }
    fn union(&mut self, other: &Taint) {
        self.untrusted = self.untrusted.max(other.untrusted);
        self.params |= other.params;
    }
}

/// Functions recognized as untrusted-data sources by name (so fixtures
/// work without cross-file resolution): little-endian decoders and the
/// env-registry gateway.
const SOURCES: &[(&str, u8)] = &[("u32_le_at", 32), ("u64_le_at", 64)];

/// Calls that make an expression "checked": total accessors, fallible
/// conversions and saturating/bounding arithmetic.
const SANITIZERS: &[&str] = &[
    "try_from",
    "try_into",
    "try_u32_le_at",
    "try_u64_le_at",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "checked_shl",
    "checked_shr",
    "checked_pow",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "parse",
    "min",
    "clamp",
    "get",
    "get_mut",
];

/// `hep_par` entry points whose closures must be order-insensitive.
const PAR_ENTRIES: &[&str] = &[
    "par_map",
    "par_for_each",
    "par_for_each_init",
    "par_reduce",
    "par_chunks",
    "par_chunks_mut",
    "par_rounds",
];

/// Hash-keyed collection mutators (capturing one of these in a parallel
/// closure makes insertion order thread-schedule-dependent).
const HASH_MUTATORS: &[&str] =
    &["insert", "remove", "entry", "extend", "retain", "clear", "drain", "get_mut"];

/// Non-commutative atomic read-modify-write methods.
const ATOMIC_RMW: &[&str] = &["swap", "compare_exchange", "compare_exchange_weak", "fetch_update"];

/// `std` methods whose `Result` is silently droppable via `let _ =` but
/// must not be in library code. Curated: names specific enough that a
/// bare name match is meaningful.
const STD_MUST_USE: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "send",
    "recv",
    "try_send",
    "try_recv",
    "set_permissions",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "set_len",
    "try_into",
];

/// Integer width in bits of a primitive type name.
fn width_of(name: &str) -> Option<u8> {
    Some(match name {
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" => 32,
        "u64" | "i64" | "usize" | "isize" => 64,
        "u128" | "i128" => 128,
        _ => return None,
    })
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn is_ident(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

fn ident_text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str())
}

/// Index just past the close of a balanced region whose opener sits at `i`.
fn close_of(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        match toks[j].kind {
            TokKind::Punct(c) if c == open => depth += 1,
            TokKind::Punct(c) if c == close => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether file `fi` has an HL007 waiver covering `line` — those sites
/// carry impossibility proofs and are not HL011 panic sources.
fn hl007_waived(inp: &SemaInput<'_>, fi: usize, line: u32) -> bool {
    inp.waivers.get(fi).is_some_and(|ws| {
        ws.iter().any(|w| w.rules.contains(&Rule::Hl007) && w.lines.contains(&line))
    })
}

/// Whether a token region contains a checked/total call or a `%`.
fn region_sanitized(toks: &[Tok], start: usize, end: usize) -> bool {
    for i in start..end.min(toks.len()) {
        match &toks[i].kind {
            TokKind::Punct('%') => return true,
            TokKind::Ident
                if SANITIZERS.contains(&toks[i].text.as_str()) && is_punct(toks, i + 1, '(') =>
            {
                return true;
            }
            TokKind::Ident
                if (toks[i].text == "len" || toks[i].text == "is_empty")
                    && is_punct(toks, i + 1, '(') =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// The untrusted width of a source call found in a region, if any.
fn region_source(toks: &[Tok], start: usize, end: usize) -> Option<u8> {
    let mut w = None;
    for i in start..end.min(toks.len()) {
        if toks[i].kind != TokKind::Ident || !is_punct(toks, i + 1, '(') {
            continue;
        }
        let name = toks[i].text.as_str();
        if let Some((_, sw)) = SOURCES.iter().find(|(n, _)| *n == name) {
            w = w.max(Some(*sw));
        }
        // `env_registry::read(…)` / `env_registry::knob(…)`: external input.
        if (name == "read" || name == "knob")
            && is_punct(toks, i.wrapping_sub(1), ':')
            && is_punct(toks, i.wrapping_sub(2), ':')
            && is_ident(toks, i.wrapping_sub(3), "env_registry")
        {
            w = w.max(Some(64));
        }
    }
    w
}

/// Runs the semantic rules and returns raw (pre-waiver) diagnostics.
pub fn check_semantic(inp: &SemaInput<'_>) -> Vec<Diagnostic> {
    let model = inp.model;
    let n = model.fns.len();

    // Per-function call sites, extracted once.
    let calls: Vec<Vec<CallSite>> = model
        .fns
        .iter()
        .map(|f| find_calls(&inp.scans[f.file].1.toks, f.body, f.file, &inp.scans[f.file].0, model))
        .collect();

    // Bounded fixpoint over the summaries. Summaries only grow (panic
    // flips None→Some, sink maps gain entries), so convergence is
    // guaranteed; the cap is a safety net against resolution cycles.
    let mut summaries: Vec<Summary> = vec![Summary::default(); n];
    for _round in 0..64 {
        let mut changed = false;
        for f in 0..n {
            let (s, _) = analyze_fn(inp, f, &calls[f], &summaries);
            if s != summaries[f] {
                summaries[f] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final emission pass: local + interprocedural HL012 sinks.
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, u32, &'static str)> = BTreeSet::new();
    let mut push = |out: &mut Vec<Diagnostic>, d: Diagnostic| {
        if seen.insert((d.file.clone(), d.line, d.col, d.rule.id())) {
            out.push(d);
        }
    };
    for (f, fcalls) in calls.iter().enumerate().take(n) {
        let (_, diags) = analyze_fn(inp, f, fcalls, &summaries);
        for d in diags {
            push(&mut out, d);
        }
    }

    // HL011 from the converged summaries, anchored per design: part A at
    // the public fn declaration, part B at the index site.
    for (fid, f) in model.fns.iter().enumerate() {
        let scope = &inp.scans[f.file].0;
        if !f.is_pub || !scope.library || scope.crate_name == "bench" {
            continue;
        }
        let sum = &summaries[fid];
        if let Some(PanicSrc::Via(_)) = sum.panic {
            let (chain, what) = panic_chain(model, &summaries, fid);
            push(
                &mut out,
                Diagnostic {
                    file: scope.path.clone(),
                    line: f.line,
                    col: f.col,
                    rule: Rule::Hl011,
                    msg: format!(
                        "public fn `{}` can reach {what} via `{chain}` — make the call path total, or waive the root site with its invariant",
                        f.display()
                    ),
                },
            );
        }
        for (p, sink) in &sum.param_index_sinks {
            let pname = f.params.get(*p).map(|p| p.name.clone()).unwrap_or_default();
            let via = if sink.via.is_empty() {
                String::new()
            } else {
                format!(" (via `{}`)", sink.via.join(" → "))
            };
            push(
                &mut out,
                Diagnostic {
                    file: inp.scans[sink.file].0.path.clone(),
                    line: sink.line,
                    col: sink.col,
                    rule: Rule::Hl011,
                    msg: format!(
                        "index {} is fed by parameter `{pname}` of public fn `{}`{via} with no visible bounds guard — guard it, use `get`, or waive with the range invariant",
                        sink.what,
                        f.display()
                    ),
                },
            );
        }
    }

    // Purely lexical rules.
    for (fi, (scope, scanned)) in inp.scans.iter().enumerate() {
        if !scope.library || scope.compat {
            continue;
        }
        check_par_closures(inp, fi, scope, scanned, &mut out);
        check_swallowed_results(inp, fi, scope, scanned, &mut out);
    }

    out
}

/// Reconstructs the call chain from a public fn to the direct panic site.
fn panic_chain(model: &Model, summaries: &[Summary], start: FnId) -> (String, String) {
    let mut names = Vec::new();
    let mut cur = start;
    let mut what = "a panic".to_string();
    let mut visited = BTreeSet::new();
    for _ in 0..8 {
        if !visited.insert(cur) {
            break;
        }
        match &summaries[cur].panic {
            Some(PanicSrc::Via(g)) => {
                names.push(model.fns[*g].display());
                cur = *g;
            }
            Some(PanicSrc::Direct { what: w }) => {
                what = w.clone();
                break;
            }
            None => break,
        }
    }
    (names.join(" → "), what)
}

/// One linear, lexical dataflow walk over a function body. Returns the
/// summary and any locally anchored diagnostics (only the final pass
/// keeps the diagnostics).
fn analyze_fn(
    inp: &SemaInput<'_>,
    fid: FnId,
    calls: &[CallSite],
    summaries: &[Summary],
) -> (Summary, Vec<Diagnostic>) {
    let f = &inp.model.fns[fid];
    // hep-lint: allow(HL011) -- FnItem.file is minted by the model builder as an index into the same scans slice
    let (scope, scanned) = &inp.scans[f.file];
    let toks = &scanned.toks;
    let (b0, b1) = f.body;
    let mut sum = Summary::default();
    let mut diags = Vec::new();

    // Receivers whose length is observed anywhere in this body.
    let mut len_aware: BTreeSet<&str> = BTreeSet::new();
    for i in b0..b1 {
        if is_punct(toks, i, '.')
            && (is_ident(toks, i + 1, "len") || is_ident(toks, i + 1, "is_empty"))
        {
            if let Some(r) = ident_text(toks, i.wrapping_sub(1)) {
                len_aware.insert(r);
            }
        }
    }
    let call_at: BTreeMap<usize, &CallSite> = calls.iter().map(|c| (c.tok, c)).collect();

    // Bindings: parameters seed the param-derivation bits.
    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    for (i, p) in f.params.iter().enumerate().take(64) {
        if !p.name.is_empty() {
            env.insert(p.name.clone(), Taint { untrusted: None, params: 1u64 << i });
        }
    }

    // Taint of a region: union over tracked idents + recognized sources +
    // resolved calls that return untrusted data. A sanitizer in the
    // region cleans everything (flow-insensitive, documented).
    let region_taint = |env: &BTreeMap<String, Taint>, start: usize, end: usize| -> Taint {
        let mut t = Taint::default();
        for k in start..end.min(toks.len()) {
            if let Some(id) = ident_text(toks, k) {
                if let Some(e) = env.get(id) {
                    t.union(e);
                }
                if let Some(c) = call_at.get(&k) {
                    if let Some(g) = c.target {
                        t.untrusted = t.untrusted.max(summaries[g].returns_untrusted);
                    }
                }
            }
        }
        t.untrusted = t.untrusted.max(region_source(toks, start, end));
        if region_sanitized(toks, start, end) {
            return Taint::default();
        }
        t
    };

    // End of the statement starting after `from`: `;` at depth 0, or a
    // top-level `{` (if/while/else-less let), whichever comes first.
    let stmt_end = |from: usize| -> usize {
        let mut d = 0i32;
        let mut k = from;
        while k < b1 {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
                TokKind::Punct(';') if d <= 0 => return k,
                TokKind::Punct('{') if d <= 0 => return k,
                _ => {}
            }
            k += 1;
        }
        b1
    };

    let mut brace = 1i32;
    let mut tail_start = b0 + 1;
    let mut i = b0 + 1;
    while i + 1 < b1 {
        let tok = &toks[i];
        match tok.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct(';') if brace == 1 => tail_start = i + 1,
            TokKind::Punct('[') => {
                // Slice-index sink: `recv[expr]` with a tracked, unguarded
                // expression. A keyword before `[` is a slice pattern
                // (`let [a, b] = …`) or similar, not an index receiver.
                if let Some(recv) = ident_text(toks, i.wrapping_sub(1)).filter(|r| {
                    !matches!(*r, "let" | "in" | "return" | "else" | "box" | "mut" | "ref")
                }) {
                    let end = close_of(toks, i, '[', ']') - 1;
                    let guarded = len_aware.contains(recv) || region_sanitized(toks, i + 1, end);
                    if !guarded {
                        for k in i + 1..end {
                            let Some(id) = ident_text(toks, k) else { continue };
                            let Some(e) = env.get(id) else { continue };
                            if let Some(w) = e.untrusted {
                                diags.push(Diagnostic {
                                    file: scope.path.clone(),
                                    line: toks[k].line,
                                    col: toks[k].col,
                                    rule: Rule::Hl012,
                                    msg: format!(
                                        "untrusted {w}-bit value `{id}` indexes `{recv}` in `{}` without a bounds check — compare against `{recv}.len()` or use `get`",
                                        f.display()
                                    ),
                                });
                            }
                            for p in 0..f.params.len().min(64) {
                                if e.params & (1u64 << p) != 0 {
                                    sum.param_index_sinks.entry(p).or_insert_with(|| Sink {
                                        file: f.file,
                                        line: toks[k].line,
                                        col: toks[k].col,
                                        what: format!("`{recv}[{id}]` in `{}`", f.display()),
                                        via: Vec::new(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            TokKind::Ident => {
                let text = tok.text.as_str();
                match text {
                    "let" => {
                        // Pattern idents = lowercase-start idents before the
                        // `=`; a `:` switches to type position until `=`.
                        let mut j = i + 1;
                        let mut names: Vec<String> = Vec::new();
                        let mut in_ty = false;
                        let mut d = 0i32;
                        while j < b1 {
                            match toks[j].kind {
                                TokKind::Punct('(') | TokKind::Punct('[') => d += 1,
                                TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
                                TokKind::Punct(':') if d == 0 => in_ty = true,
                                TokKind::Punct('=') if d <= 0 && !is_punct(toks, j + 1, '=') => {
                                    break
                                }
                                TokKind::Punct(';') | TokKind::Punct('{') if d <= 0 => break,
                                TokKind::Ident if !in_ty => {
                                    let t = toks[j].text.as_str();
                                    if t.starts_with(|c: char| c.is_ascii_lowercase())
                                        && !matches!(t, "mut" | "ref" | "box")
                                    {
                                        names.push(t.to_string());
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if j < b1 && is_punct(toks, j, '=') {
                            let end = stmt_end(j + 1);
                            let t = region_taint(&env, j + 1, end);
                            for nm in names {
                                env.insert(nm, t.clone());
                            }
                        }
                    }
                    "as" => {
                        // Narrowing cast of an untrusted value.
                        if let (Some(op), Some(target)) =
                            (ident_text(toks, i.wrapping_sub(1)), ident_text(toks, i + 1))
                        {
                            if let (Some(e), Some(tw)) = (env.get(op), width_of(target)) {
                                if let Some(w) = e.untrusted {
                                    if tw < w {
                                        diags.push(Diagnostic {
                                            file: scope.path.clone(),
                                            line: toks[i - 1].line,
                                            col: toks[i - 1].col,
                                            rule: Rule::Hl012,
                                            msg: format!(
                                                "untrusted {w}-bit value `{op}` narrowed to `{target}` with `as` in `{}` — use `try_into`/a checked helper so truncation is an error",
                                                f.display()
                                            ),
                                        });
                                    }
                                }
                                let e = e.clone();
                                if e.params != 0 && width_of(target).is_some_and(|tw| tw < 64) {
                                    for p in 0..f.params.len().min(64) {
                                        if e.params & (1u64 << p) != 0 {
                                            sum.param_untrusted_sinks.entry(p).or_insert_with(
                                                || Sink {
                                                    file: f.file,
                                                    line: toks[i - 1].line,
                                                    col: toks[i - 1].col,
                                                    what: format!(
                                                        "an `as {target}` narrowing in `{}`",
                                                        f.display()
                                                    ),
                                                    via: Vec::new(),
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    "with_capacity" if is_punct(toks, i + 1, '(') => {
                        let end = close_of(toks, i + 1, '(', ')') - 1;
                        capacity_sink(
                            inp,
                            f,
                            &env,
                            toks,
                            i + 2,
                            end,
                            "with_capacity",
                            &mut sum,
                            &mut diags,
                        );
                    }
                    "vec" if is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '[') => {
                        // `vec![elem; len]`: the length expression.
                        let close = close_of(toks, i + 2, '[', ']') - 1;
                        let mut d = 0i32;
                        let mut semi = None;
                        for (k, t) in toks.iter().enumerate().take(close).skip(i + 3) {
                            match t.kind {
                                TokKind::Punct('(') | TokKind::Punct('[') => d += 1,
                                TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
                                TokKind::Punct(';') if d == 0 => {
                                    semi = Some(k);
                                    break;
                                }
                                _ => {}
                            }
                        }
                        if let Some(s) = semi {
                            capacity_sink(
                                inp,
                                f,
                                &env,
                                toks,
                                s + 1,
                                close,
                                "vec![…; n]",
                                &mut sum,
                                &mut diags,
                            );
                        }
                    }
                    "return" => {
                        let end = stmt_end(i + 1);
                        sum.returns_untrusted =
                            sum.returns_untrusted.max(region_taint(&env, i + 1, end).untrusted);
                    }
                    "unwrap" | "expect"
                        if is_punct(toks, i.wrapping_sub(1), '.') && is_punct(toks, i + 1, '(') =>
                    {
                        if sum.panic.is_none() && !hl007_waived(inp, f.file, tok.line) {
                            let what =
                                if text == "unwrap" { "`.unwrap()`" } else { "`.expect(…)`" };
                            sum.panic = Some(PanicSrc::Direct { what: what.into() });
                        }
                    }
                    "panic" if is_punct(toks, i + 1, '!') => {
                        if sum.panic.is_none() && !hl007_waived(inp, f.file, tok.line) {
                            sum.panic = Some(PanicSrc::Direct { what: "`panic!`".into() });
                        }
                    }
                    _ => {
                        // Plain re-assignment at statement start rebinds
                        // the taint; compound assignment unions it in.
                        let stmt_head = i == b0 + 1
                            || is_punct(toks, i - 1, ';')
                            || is_punct(toks, i - 1, '{')
                            || is_punct(toks, i - 1, '}');
                        if stmt_head && is_punct(toks, i + 1, '=') && !is_punct(toks, i + 2, '=') {
                            let end = stmt_end(i + 2);
                            let t = region_taint(&env, i + 2, end);
                            env.insert(text.to_string(), t);
                        } else if stmt_head
                            && toks.get(i + 1).is_some_and(|t| {
                                matches!(
                                    t.kind,
                                    TokKind::Punct('+')
                                        | TokKind::Punct('-')
                                        | TokKind::Punct('*')
                                        | TokKind::Punct('|')
                                        | TokKind::Punct('&')
                                        | TokKind::Punct('^')
                                )
                            })
                            && is_punct(toks, i + 2, '=')
                        {
                            let end = stmt_end(i + 3);
                            let mut t = region_taint(&env, i + 3, end);
                            if let Some(e) = env.get(text) {
                                t.union(e);
                            }
                            env.insert(text.to_string(), t);
                        }
                        // Comparison observation sanitizes a binding.
                        if env.contains_key(text) && compared_here(toks, i) {
                            env.remove(text);
                        }
                        // Call: propagate through the callee summary.
                        if let Some(c) = call_at.get(&i) {
                            process_call(
                                inp,
                                f,
                                c,
                                &env,
                                summaries,
                                &region_taint,
                                &mut sum,
                                &mut diags,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Tail expression: taints the return value when the fn returns one.
    if !f.ret.is_empty() && f.ret != "( )" {
        sum.returns_untrusted =
            sum.returns_untrusted.max(region_taint(&env, tail_start, b1 - 1).untrusted);
    }
    (sum, diags)
}

/// Whether the ident at `i` is an operand of a lexical comparison
/// (including `assert!`-style macro bodies). Shifts (`<<`, `>>`), arrows
/// (`->`, `=>`) and turbofish (`::<`) do not count.
fn compared_here(toks: &[Tok], i: usize) -> bool {
    let p = |off: isize, c: char| {
        let j = i as isize + off;
        j >= 0 && is_punct(toks, j as usize, c)
    };
    // ident < …   ident > …   ident == …   ident != …
    if p(1, '<') && !p(2, '<') && !p(-1, ':') {
        return true;
    }
    if p(1, '>') && !p(2, '>') {
        return true;
    }
    if p(1, '=') && p(2, '=') {
        return true;
    }
    if p(1, '!') && p(2, '=') {
        return true;
    }
    // … < ident   … > ident   … <= / >= / == / != ident
    if p(-1, '<') && !p(-2, '<') && !p(-2, ':') {
        return true;
    }
    if p(-1, '>') && !p(-2, '>') && !p(-2, '-') && !p(-2, '=') && !p(-2, ':') {
        return true;
    }
    if p(-1, '=') && (p(-2, '<') || p(-2, '>') || p(-2, '=') || p(-2, '!')) {
        return true;
    }
    false
}

/// Records/reports a capacity-style sink (`with_capacity`, `vec![…; n]`).
#[allow(clippy::too_many_arguments)] // internal plumbing, two call sites
fn capacity_sink(
    inp: &SemaInput<'_>,
    f: &crate::model::FnItem,
    env: &BTreeMap<String, Taint>,
    toks: &[Tok],
    start: usize,
    end: usize,
    what: &str,
    sum: &mut Summary,
    diags: &mut Vec<Diagnostic>,
) {
    if region_sanitized(toks, start, end) {
        return;
    }
    let scope = &inp.scans[f.file].0;
    for k in start..end.min(toks.len()) {
        let Some(id) = ident_text(toks, k) else { continue };
        let Some(e) = env.get(id) else { continue };
        if let Some(w) = e.untrusted {
            diags.push(Diagnostic {
                file: scope.path.clone(),
                line: toks[k].line,
                col: toks[k].col,
                rule: Rule::Hl012,
                msg: format!(
                    "untrusted {w}-bit value `{id}` sizes `{what}` in `{}` — validate it against the actual input length first",
                    f.display()
                ),
            });
        }
        for p in 0..f.params.len().min(64) {
            if e.params & (1u64 << p) != 0 {
                sum.param_untrusted_sinks.entry(p).or_insert_with(|| Sink {
                    file: f.file,
                    line: toks[k].line,
                    col: toks[k].col,
                    what: format!("`{what}` in `{}`", f.display()),
                    via: Vec::new(),
                });
            }
        }
    }
}

/// Propagates taint through one call site: inherits callee sinks for
/// param-derived args, reports callee sinks for untrusted args, and
/// inherits may-panic.
/// Taint of a token region under an environment (a closure over the body
/// walk's locals, passed down so the call handler shares its view).
type RegionTaint<'e> = dyn Fn(&BTreeMap<String, Taint>, usize, usize) -> Taint + 'e;

#[allow(clippy::too_many_arguments)] // internal plumbing, one call site
fn process_call(
    inp: &SemaInput<'_>,
    f: &crate::model::FnItem,
    c: &CallSite,
    env: &BTreeMap<String, Taint>,
    summaries: &[Summary],
    region_taint: &RegionTaint<'_>,
    sum: &mut Summary,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(g) = c.target else { return };
    let gs = &summaries[g];
    let gf = &inp.model.fns[g];
    if gs.panic.is_some() && sum.panic.is_none() {
        sum.panic = Some(PanicSrc::Via(g));
    }
    for (pos, (a0, a1)) in c.args.iter().enumerate() {
        if pos >= gf.params.len() {
            break;
        }
        let t = region_taint(env, *a0, *a1);
        if t.is_clean() {
            continue;
        }
        if let Some(w) = t.untrusted {
            for map in [&gs.param_index_sinks, &gs.param_untrusted_sinks] {
                if let Some(sink) = map.get(&pos) {
                    let via = if sink.via.is_empty() {
                        String::new()
                    } else {
                        format!(" (via `{}`)", sink.via.join(" → "))
                    };
                    diags.push(Diagnostic {
                        file: inp.scans[sink.file].0.path.clone(),
                        line: sink.line,
                        col: sink.col,
                        rule: Rule::Hl012,
                        msg: format!(
                            "untrusted {w}-bit value from `{}` flows into parameter `{}` of `{}`{via}, reaching {} unchecked — sanitize before the call or make the callee total",
                            f.display(),
                            gf.params[pos].name,
                            gf.display(),
                            sink.what
                        ),
                    });
                }
            }
        }
        if t.params != 0 {
            for (src, dst) in [
                (&gs.param_index_sinks, &mut sum.param_index_sinks),
                (&gs.param_untrusted_sinks, &mut sum.param_untrusted_sinks),
            ] {
                if let Some(sink) = src.get(&pos) {
                    for p in 0..f.params.len().min(64) {
                        if t.params & (1u64 << p) != 0 {
                            dst.entry(p).or_insert_with(|| {
                                let mut via = vec![gf.display()];
                                via.extend(sink.via.iter().take(5).cloned());
                                Sink {
                                    file: sink.file,
                                    line: sink.line,
                                    col: sink.col,
                                    what: sink.what.clone(),
                                    via,
                                }
                            });
                        }
                    }
                }
            }
        }
    }
}

/// HL013: determinism hazards in closures passed to `hep_par` entry
/// points.
fn check_par_closures(
    inp: &SemaInput<'_>,
    fi: usize,
    scope: &FileScope,
    scanned: &Scanned,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &scanned.toks;
    let in_test = |line: u32| {
        scope.tests_dir || inp.test_lines[fi].get(line as usize).copied().unwrap_or(false)
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !PAR_ENTRIES.contains(&toks[i].text.as_str()) {
            continue;
        }
        let entry = toks[i].text.clone();
        // Skip an optional turbofish, then require the call paren.
        let mut j = i + 1;
        if is_punct(toks, j, ':') && is_punct(toks, j + 1, ':') && is_punct(toks, j + 2, '<') {
            j = close_of(toks, j + 2, '<', '>');
        }
        if !is_punct(toks, j, '(') || in_test(toks[i].line) {
            continue;
        }
        let close = close_of(toks, j, '(', ')') - 1;
        // Float/hash knowledge is scoped to the enclosing item — from the
        // last `fn` keyword before the entry call through the call's
        // closing paren — so a `x: f64` param in one function does not
        // poison an identically named integer in the next. A lexical
        // approximation of scoping, biased toward fewer false positives.
        let fn_start = (0..i).rev().find(|&k| is_ident(toks, k, "fn")).unwrap_or(0);
        let item = &toks[fn_start..(close + 1).min(toks.len())];
        let hashy = crate::rules::hashy_idents(item);
        let floaty = floaty_idents(item);
        // Locate top-level closures: `|params| body` (or `move |…|`).
        let mut d = 0i32;
        let mut closures: Vec<(usize, usize, usize)> = Vec::new(); // (params0, params1, body_end)
        let mut k = j + 1;
        while k < close {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                TokKind::Punct('|') if d == 0 => {
                    let prev_ok = k == j + 1
                        || is_punct(toks, k - 1, '(')
                        || is_punct(toks, k - 1, ',')
                        || is_ident(toks, k - 1, "move");
                    if prev_ok {
                        // Params run to the matching `|` (or `||`).
                        let pend = if is_punct(toks, k + 1, '|') {
                            k + 1
                        } else {
                            let mut m = k + 1;
                            let mut pd = 0i32;
                            while m < close {
                                match toks[m].kind {
                                    TokKind::Punct('(')
                                    | TokKind::Punct('[')
                                    | TokKind::Punct('<') => pd += 1,
                                    TokKind::Punct(')')
                                    | TokKind::Punct(']')
                                    | TokKind::Punct('>') => pd -= 1,
                                    TokKind::Punct('|') if pd <= 0 => break,
                                    _ => {}
                                }
                                m += 1;
                            }
                            m
                        };
                        // Body runs to the next top-level `,` or the close.
                        let mut m = pend + 1;
                        let mut bd = 0i32;
                        while m < close {
                            match toks[m].kind {
                                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                    bd += 1
                                }
                                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                    bd -= 1
                                }
                                TokKind::Punct(',') if bd <= 0 => break,
                                _ => {}
                            }
                            m += 1;
                        }
                        closures.push((k + 1, pend, m));
                        k = m;
                        continue;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for (ci, &(p0, p1, bend)) in closures.iter().enumerate() {
            let body = (p1 + 1, bend);
            // Closure params and closure-local lets are not captures.
            let mut locals: BTreeSet<String> = BTreeSet::new();
            let mut closure_floaty: BTreeSet<String> = BTreeSet::new();
            let mut m = p0;
            while m < p1 {
                if let Some(nm) = ident_text(toks, m) {
                    if nm != "mut" && nm != "ref" && !is_punct(toks, m.wrapping_sub(1), ':') {
                        locals.insert(nm.to_string());
                        if is_punct(toks, m + 1, ':')
                            && (is_ident(toks, m + 2, "f32") || is_ident(toks, m + 2, "f64"))
                        {
                            closure_floaty.insert(nm.to_string());
                        }
                    }
                }
                m += 1;
            }
            for m in body.0..body.1 {
                if is_ident(toks, m, "let") {
                    if let Some(nm) = ident_text(toks, m + 1) {
                        if nm == "mut" {
                            if let Some(nm2) = ident_text(toks, m + 2) {
                                locals.insert(nm2.to_string());
                            }
                        } else {
                            locals.insert(nm.to_string());
                        }
                    }
                }
            }
            let is_floaty = |m: usize| -> bool {
                toks.get(m).is_some_and(|t| {
                    t.is_float()
                        || (t.kind == TokKind::Ident
                            && (floaty.contains(&t.text) || closure_floaty.contains(&t.text)))
                })
            };
            // Hazard 1: non-associative float folding — only the fold
            // closure (the last one) of `par_reduce` accumulates across
            // items, so only it is order-sensitive.
            if entry == "par_reduce" && ci + 1 == closures.len() {
                for m in body.0..body.1 {
                    let op = matches!(
                        toks[m].kind,
                        TokKind::Punct('+')
                            | TokKind::Punct('-')
                            | TokKind::Punct('*')
                            | TokKind::Punct('/')
                    );
                    // `->` is an arrow, not a subtraction.
                    if !op || (toks[m].kind == TokKind::Punct('-') && is_punct(toks, m + 1, '>')) {
                        continue;
                    }
                    let binary = m > 0
                        && (toks[m - 1].kind == TokKind::Num
                            || toks[m - 1].kind == TokKind::Ident
                            || is_punct(toks, m - 1, ')'));
                    if binary && (is_floaty(m.wrapping_sub(1)) || is_floaty(m + 1)) {
                        out.push(Diagnostic {
                            file: scope.path.clone(),
                            line: toks[m].line,
                            col: toks[m].col,
                            rule: Rule::Hl013,
                            msg: format!(
                                "float arithmetic in the fold closure of `{entry}` — float addition is not associative, so the result depends on chunking; fold integers (fixed-point) or reduce sequentially"
                            ),
                        });
                        break;
                    }
                }
            }
            // Hazard 2: mutating a captured hash-keyed collection.
            for m in body.0..body.1 {
                let Some(nm) = ident_text(toks, m) else { continue };
                if hashy.contains(nm)
                    && !locals.contains(nm)
                    && is_punct(toks, m + 1, '.')
                    && ident_text(toks, m + 2).is_some_and(|x| HASH_MUTATORS.contains(&x))
                    && is_punct(toks, m + 3, '(')
                {
                    out.push(Diagnostic {
                        file: scope.path.clone(),
                        line: toks[m].line,
                        col: toks[m].col,
                        rule: Rule::Hl013,
                        msg: format!(
                            "closure passed to `{entry}` mutates captured hash-keyed collection `{nm}` — per-thread accumulation order becomes schedule-dependent; accumulate per-chunk and merge in index order"
                        ),
                    });
                }
            }
            // Hazard 3: non-commutative atomic RMW.
            for m in body.0..body.1 {
                if is_punct(toks, m, '.')
                    && ident_text(toks, m + 1).is_some_and(|x| ATOMIC_RMW.contains(&x))
                    && is_punct(toks, m + 2, '(')
                {
                    out.push(Diagnostic {
                        file: scope.path.clone(),
                        line: toks[m + 1].line,
                        col: toks[m + 1].col,
                        rule: Rule::Hl013,
                        msg: format!(
                            "non-commutative atomic `{}` in a closure passed to `{entry}` — the winner depends on thread interleaving; use a commutative RMW (fetch_add/fetch_min) or merge deterministically after the join",
                            toks[m + 1].text
                        ),
                    });
                }
            }
        }
    }
}

/// Lexical binding tracker for float-typed identifiers (mirrors
/// `hashy_idents`): `let x = 1.0`, `let x: f64 = …`, `name: f32` fields
/// and params.
fn floaty_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut floaty = BTreeSet::new();
    for i in 0..toks.len() {
        if is_ident(toks, i, "let") {
            let mut j = i + 1;
            if is_ident(toks, j, "mut") {
                j += 1;
            }
            if let Some(name) = ident_text(toks, j) {
                for t in toks.iter().take((j + 24).min(toks.len())).skip(j + 1) {
                    match t.kind {
                        TokKind::Punct(';') => break,
                        TokKind::Num if t.is_float() => {
                            floaty.insert(name.to_string());
                            break;
                        }
                        TokKind::Ident if t.text == "f32" || t.text == "f64" => {
                            floaty.insert(name.to_string());
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
        if toks[i].kind == TokKind::Ident
            && is_punct(toks, i + 1, ':')
            && !is_punct(toks, i + 2, ':')
            && (is_ident(toks, i + 2, "f32") || is_ident(toks, i + 2, "f64"))
        {
            floaty.insert(toks[i].text.clone());
        }
    }
    floaty
}

/// HL014: `let _ =` discarding a `Result`/`#[must_use]` value in library
/// code. Macros (`let _ = write!(…)`) are not calls and stay silent.
fn check_swallowed_results(
    inp: &SemaInput<'_>,
    fi: usize,
    scope: &FileScope,
    scanned: &Scanned,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &scanned.toks;
    let in_test = |line: u32| {
        scope.tests_dir || inp.test_lines[fi].get(line as usize).copied().unwrap_or(false)
    };
    for i in 0..toks.len() {
        if !is_ident(toks, i, "let")
            || !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident && t.text == "_")
            || !is_punct(toks, i + 2, '=')
            || in_test(toks[i].line)
        {
            continue;
        }
        // Find the last top-level call in the RHS.
        let mut d = 0i32;
        let mut k = i + 3;
        let mut last: Option<(usize, bool)> = None; // (name tok, is_method)
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                TokKind::Punct(';') if d <= 0 => break,
                TokKind::Ident if d == 0 => {
                    let mut j = k + 1;
                    if is_punct(toks, j, ':')
                        && is_punct(toks, j + 1, ':')
                        && is_punct(toks, j + 2, '<')
                    {
                        j = close_of(toks, j + 2, '<', '>');
                    }
                    if is_punct(toks, j, '(') && !is_punct(toks, k + 1, '!') {
                        last = Some((k, is_punct(toks, k.wrapping_sub(1), '.')));
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let Some((name_tok, method)) = last else { continue };
        let name = toks[name_tok].text.clone();
        let (flagged, why) = if method && STD_MUST_USE.contains(&name.as_str()) {
            (true, "a `Result`".to_string())
        } else {
            let mut path = vec![name.clone()];
            if !method {
                let mut k2 = name_tok;
                while k2 >= 3
                    && is_punct(toks, k2 - 1, ':')
                    && is_punct(toks, k2 - 2, ':')
                    && toks[k2 - 3].kind == TokKind::Ident
                {
                    path.insert(0, toks[k2 - 3].text.clone());
                    k2 -= 3;
                }
            }
            match inp.model.resolve(fi, scope, &path, method) {
                Some(g) => {
                    let gf = &inp.model.fns[g];
                    if gf.must_use {
                        (true, "a `#[must_use]` value".to_string())
                    } else if gf.ret.split_whitespace().any(|t| t == "Result") {
                        (true, format!("a `Result` from `{}`", gf.display()))
                    } else {
                        (false, String::new())
                    }
                }
                None => (false, String::new()),
            }
        };
        if flagged {
            out.push(Diagnostic {
                file: scope.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                rule: Rule::Hl014,
                msg: format!(
                    "`let _ =` discards {why} returned by `{name}` — handle or propagate it, or waive with why dropping it is sound"
                ),
            });
        }
    }
}
