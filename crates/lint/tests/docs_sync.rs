//! Drift tests between the rule engine and its documentation: every rule
//! the linter can emit must be explained by `--explain` and documented in
//! DESIGN.md's §8 rule table, and neither side may carry IDs the other
//! does not know. Docs that describe a rule set the binary no longer
//! implements are worse than no docs.

use hep_lint::diag::{Rule, ALL_RULES};
use std::collections::BTreeSet;
use std::path::Path;

/// Rule IDs mentioned as `| HLxxx |` table rows in DESIGN.md §8.
fn design_md_rule_ids() -> BTreeSet<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(&path).expect("read DESIGN.md");
    let mut ids = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| HL") else { continue };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.len() == 3 {
            ids.insert(format!("HL{digits}"));
        }
    }
    ids
}

#[test]
fn design_md_table_matches_rule_set() {
    let documented = design_md_rule_ids();
    let implemented: BTreeSet<String> = ALL_RULES.iter().map(|r| r.id().to_string()).collect();
    assert_eq!(
        documented, implemented,
        "DESIGN.md §8 rule table and hep_lint::diag::ALL_RULES disagree — \
         update whichever side is stale"
    );
}

#[test]
fn every_rule_has_a_substantive_explanation() {
    for &rule in ALL_RULES {
        let text = rule.explain();
        assert!(text.len() > 80, "--explain {} is too thin to be useful: {text:?}", rule.id());
        assert!(text.contains(rule.id()), "--explain {} never names its own rule ID", rule.id());
    }
}

#[test]
fn explain_ids_round_trip() {
    for &rule in ALL_RULES {
        assert_eq!(Rule::from_id(rule.id()), Some(rule), "{} must parse back", rule.id());
    }
    assert_eq!(Rule::from_id("HL999"), None);
    assert_eq!(Rule::from_id("hl011"), None, "IDs are case-sensitive");
}
