//! Fixture corpus for the rule engine.
//!
//! Each fixture under `crates/lint/fixtures/` exercises one rule with
//! positive, negative and waivered cases. Expectations live *inside* the
//! fixtures: a line tagged with a trailing `//~ HL00x` marker must
//! produce exactly that diagnostic on that line, and every untagged line
//! must stay silent — so the assertion is an exact set comparison, not a
//! "contains" check. The HL006/HL008/HL009 workspace-level cases are
//! asserted explicitly because they span files.

use hep_lint::diag::{Diagnostic, Rule};
use hep_lint::{lint, FileInput, Workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Extracts `(line, rule)` expectations from `//~ HLxxx` markers.
fn expected_markers(source: &str) -> Vec<(u32, Rule)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(pos) = line.find("//~") else { continue };
        for word in line[pos + 3..].split_whitespace() {
            if let Some(rule) = Rule::from_id(word) {
                out.push((idx as u32 + 1, rule));
            }
        }
    }
    out.sort();
    out
}

/// Lints one fixture at a virtual workspace path and compares the
/// diagnostics for that file against its inline markers.
fn check_fixture(fixture_name: &str, virtual_path: &str) {
    let source = fixture(fixture_name);
    let expected = expected_markers(&source);
    // `*_ok.rs` fixtures are deliberate negatives: the assertion that
    // every untagged line stays silent is their whole point.
    assert!(
        !expected.is_empty() || fixture_name.ends_with("_ok.rs"),
        "fixture {fixture_name} has no markers"
    );
    let ws = Workspace {
        files: vec![FileInput { path: virtual_path.into(), source: source.clone() }],
        cargo_toml: "[workspace]\n".into(),
        bench_jsons: vec![],
    };
    let got: Vec<(u32, Rule)> = lint(&ws)
        .into_iter()
        .filter(|d| d.file == virtual_path)
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got, expected,
        "{fixture_name} linted as {virtual_path}: diagnostics disagree with //~ markers"
    );
}

#[test]
fn hl001_hash_iteration() {
    check_fixture("hl001.rs", "crates/core/src/hl001.rs");
    // Scope check: the identical source outside an output-affecting
    // crate's library code raises nothing.
    let source = fixture("hl001.rs");
    let ws = Workspace {
        files: vec![FileInput { path: "crates/procsim/src/hl001.rs".into(), source }],
        cargo_toml: "[workspace]\n".into(),
        bench_jsons: vec![],
    };
    let got: Vec<Diagnostic> = lint(&ws).into_iter().filter(|d| d.rule == Rule::Hl001).collect();
    assert!(got.is_empty(), "HL001 outside output-affecting crates: {got:?}");
}

#[test]
fn hl002_wall_clock() {
    check_fixture("hl002.rs", "crates/core/src/hl002.rs");
}

#[test]
fn hl003_unsafe_hygiene() {
    check_fixture("hl003.rs", "crates/ds/src/hl003.rs");
}

#[test]
fn hl004_env_reads() {
    check_fixture("hl004.rs", "crates/par/src/hl004.rs");
}

#[test]
fn hl005_env_names() {
    check_fixture("hl005.rs", "crates/graph/src/hl005.rs");
}

#[test]
fn hl007_panic_policy() {
    check_fixture("hl007.rs", "crates/graph/src/hl007.rs");
}

#[test]
fn hl010_malformed_waivers() {
    check_fixture("hl010.rs", "crates/core/src/hl010.rs");
}

#[test]
fn hl011_panic_reachability() {
    check_fixture("hl011.rs", "crates/core/src/hl011.rs");
}

#[test]
fn hl012_untrusted_taint() {
    check_fixture("hl012.rs", "crates/ds/src/hl012.rs");
}

#[test]
fn hl013_parallel_determinism() {
    check_fixture("hl013.rs", "crates/procsim/src/hl013.rs");
}

#[test]
fn hl014_swallowed_results() {
    check_fixture("hl014.rs", "crates/procsim/src/hl014.rs");
}

/// HL011 false-positive guard: the negative fixtures contain the
/// *guarded* variants of every semantic-rule trigger and must produce
/// zero diagnostics of any rule.
#[test]
fn negative_fixtures_stay_silent() {
    check_fixture("hl011_guarded_ok.rs", "crates/core/src/hl011_guarded_ok.rs");
    check_fixture("hl012_checked_ok.rs", "crates/ds/src/hl012_checked_ok.rs");
    check_fixture("hl013_commutative_ok.rs", "crates/procsim/src/hl013_commutative_ok.rs");
}

/// HL011's transitive chain is suppressed end-to-end when the root panic
/// site carries a reasoned HL007 waiver — the public caller must not be
/// re-flagged for a panic the workspace has already signed off on.
#[test]
fn hl011_waived_root_suppresses_the_chain() {
    let source = fixture("hl011.rs");
    let ws = Workspace {
        files: vec![FileInput { path: "crates/core/src/hl011.rs".into(), source }],
        cargo_toml: "[workspace]\n".into(),
        bench_jsons: vec![],
    };
    let diags = lint(&ws);
    assert!(
        !diags.iter().any(|d| d.msg.contains("outer_waived") || d.msg.contains("inner_waived")),
        "waived root leaked into a chain: {diags:?}"
    );
}

#[test]
fn diagnostics_carry_exact_locations() {
    // Pin the full file:line:col rendering for one known site: the
    // `.unwrap()` in hl007.rs `positive` sits on line 5 at the column of
    // the `unwrap` identifier.
    let source = fixture("hl007.rs");
    let unwrap_line = 5u32;
    let line_text = source.lines().nth(unwrap_line as usize - 1).expect("line 5 exists");
    let col = line_text.find("unwrap").expect("unwrap on line 5") as u32 + 1;
    let ws = Workspace {
        files: vec![FileInput { path: "crates/graph/src/hl007.rs".into(), source: source.clone() }],
        cargo_toml: "[workspace]\n".into(),
        bench_jsons: vec![],
    };
    let diags = lint(&ws);
    let first = diags.iter().find(|d| d.rule == Rule::Hl007).expect("HL007 diagnostic present");
    assert_eq!((first.line, first.col), (unwrap_line, col));
    assert!(first
        .to_string()
        .starts_with(&format!("crates/graph/src/hl007.rs:{unwrap_line}:{col}: HL007:")));
}

/// HL006: a registered knob with no reference anywhere in the workspace.
/// The registry anchor and the usage corpus are synthesized from the live
/// knob list so the fixture keeps tracking registry growth.
#[test]
fn hl006_unused_knob() {
    let knobs = hep_ds::env_registry::KNOBS;
    assert!(knobs.len() >= 2, "fixture needs at least two knobs");
    let registry_src: String =
        knobs.iter().map(|k| format!("pub const K: &str = \"{}\";\n", k.name)).collect();
    // Reference every knob except the first.
    let usage_src: String =
        knobs[1..].iter().map(|k| format!("pub fn f() {{ let _ = \"{}\"; }}\n", k.name)).collect();
    let ws = Workspace {
        files: vec![
            FileInput { path: "crates/ds/src/env_registry.rs".into(), source: registry_src },
            FileInput { path: "crates/core/src/usages.rs".into(), source: usage_src },
        ],
        cargo_toml: "[workspace]\n".into(),
        bench_jsons: vec![],
    };
    let unused: Vec<Diagnostic> = lint(&ws).into_iter().filter(|d| d.rule == Rule::Hl006).collect();
    assert_eq!(unused.len(), 1, "{unused:?}");
    assert!(unused[0].msg.contains(knobs[0].name));
    assert_eq!(unused[0].file, "crates/ds/src/env_registry.rs");
    assert_eq!(unused[0].line, 1, "anchored at the knob's name literal");
}

/// HL008/HL009: registration and report-name consistency across the
/// bench fixtures and a synthetic facade manifest.
#[test]
fn hl008_hl009_bench_consistency() {
    let toml = "\
[workspace]

[[bench]]
name = \"bench_ok\"
path = \"crates/bench/benches/bench_ok.rs\"

[[bench]]
name = \"bench_noreport\"
path = \"crates/bench/benches/bench_noreport.rs\"

[[bench]]
name = \"dangling\"
path = \"crates/bench/benches/gone.rs\"
";
    let ws = Workspace {
        files: vec![
            FileInput {
                path: "crates/bench/benches/bench_ok.rs".into(),
                source: fixture("bench_ok.rs"),
            },
            FileInput {
                path: "crates/bench/benches/bench_noreport.rs".into(),
                source: fixture("bench_noreport.rs"),
            },
            FileInput {
                path: "crates/bench/benches/bench_collide.rs".into(),
                source: fixture("bench_collide.rs"),
            },
        ],
        cargo_toml: toml.into(),
        bench_jsons: vec!["BENCH_fixture_ok.json".into(), "BENCH_stale.json".into()],
    };
    let diags: Vec<Diagnostic> =
        lint(&ws).into_iter().filter(|d| matches!(d.rule, Rule::Hl008 | Rule::Hl009)).collect();
    let got: Vec<(&str, Rule)> = diags.iter().map(|d| (d.file.as_str(), d.rule)).collect();
    let expected = vec![
        ("BENCH_stale.json", Rule::Hl009), // orphan artifact
        ("Cargo.toml", Rule::Hl008),       // dangling registration
        ("crates/bench/benches/bench_collide.rs", Rule::Hl008), // unregistered file
        ("crates/bench/benches/bench_collide.rs", Rule::Hl009), // name collision
        ("crates/bench/benches/bench_noreport.rs", Rule::Hl009), // no Report::new
    ];
    assert_eq!(got, expected, "{diags:#?}");
    // The dangling entry's diagnostic points at its [[bench]] line.
    let dangling = diags.iter().find(|d| d.file == "Cargo.toml").expect("present");
    assert_eq!(dangling.line, 11);
    // bench_ok is fully consistent: registered, unique name, live artifact.
    assert!(diags.iter().all(|d| d.file != "crates/bench/benches/bench_ok.rs"));
}
