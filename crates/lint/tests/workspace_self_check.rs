//! The linter's ultimate fixture is the repository itself: the workspace
//! must lint clean on every run. A new violation either gets fixed or
//! gets an explicit, reasoned waiver — silently accumulating debt is not
//! an option the build offers.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let ws = hep_lint::load_workspace(&root).expect("load workspace sources");
    assert!(ws.files.len() > 50, "workspace walk found only {} files", ws.files.len());
    let diags = hep_lint::lint(&ws);
    assert!(
        diags.is_empty(),
        "hep-lint found {} violation(s) — fix them or add a reasoned `hep-lint: allow(...)` waiver:\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn workspace_scan_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let ws = hep_lint::load_workspace(&root).expect("load workspace sources");
    let paths: Vec<&String> = ws.files.iter().map(|f| &f.path).collect();
    let mut sorted = paths.clone();
    sorted.sort();
    assert_eq!(paths, sorted, "scan order must be path-sorted");
    assert!(
        !paths.iter().any(|p| p.starts_with("crates/lint/fixtures/")),
        "fixture corpus must stay out of the workspace scan"
    );
    assert!(
        paths.iter().any(|p| p.as_str() == "crates/ds/src/env_registry.rs"),
        "registry source must be in the scan"
    );
}
