//! A counting global allocator: the reproduction's substitute for the
//! paper's "maximum resident set size" metric (§5.1).
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hep_metrics::alloc_track::CountingAlloc =
//!     hep_metrics::alloc_track::CountingAlloc;
//! ```
//!
//! and then bracket a measured region with [`reset_peak`] / [`peak_bytes`].
//! Peak *live* bytes is a faithful, noise-free proxy for max RSS on
//! allocation-dominated workloads like graph partitioning: the partitioners
//! hold no untracked memory (no mmap, no thread stacks of note).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + (new_size - layout.size());
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, starting a new measured region.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The test binary does not install the allocator (that would affect all
    // other tests' timing); the accounting logic is pure arithmetic over the
    // atomics and is exercised through the public helpers.
    use super::*;

    #[test]
    fn helpers_are_consistent() {
        reset_peak();
        assert!(peak_bytes() >= current_bytes().saturating_sub(1));
    }
}
