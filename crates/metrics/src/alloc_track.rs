//! A counting global allocator: the reproduction's substitute for the
//! paper's "maximum resident set size" metric (§5.1).
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hep_metrics::alloc_track::CountingAlloc =
//!     hep_metrics::alloc_track::CountingAlloc;
//! ```
//!
//! and then bracket a measured region with [`reset_peak`] / [`peak_bytes`].
//! Peak *live* bytes is a faithful, noise-free proxy for max RSS on
//! allocation-dominated workloads like graph partitioning: the partitioners
//! hold no untracked memory (no mmap; thread stacks are kernel-mapped, not
//! heap-allocated).
//!
//! The counters are **process-wide atomics**, so allocations made on
//! `hep-par` worker threads aggregate into the same live total and peak as
//! the measuring thread's own — a parallel partitioner's sharded state is
//! charged in full, concurrently with the main thread's. The peak update
//! uses the exact post-allocation total returned by the same atomic
//! read-modify-write that bumps the live counter, so no interleaving of
//! worker allocations can slip a transient maximum past the accounting.
//! One measured region at a time, though: the region itself (reset → peak)
//! is a process-wide notion, so the experiment harness runs partitioners
//! one after another, never two measured runs concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Records `size` freshly allocated bytes and folds the new live total into
/// the peak. Called from every thread that allocates; the fetch-add returns
/// this call's exact post-state, so concurrent callers each fold in a total
/// that really existed.
#[inline]
fn track_alloc(size: usize) {
    let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

/// Records `size` freed bytes.
#[inline]
fn track_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

/// Counting wrapper around the system allocator.
pub struct CountingAlloc;

// SAFETY: pure pass-through to the `System` allocator — every pointer
// handed out or accepted is exactly `System`'s, so `GlobalAlloc`'s layout
// and liveness contract is inherited unchanged; the added counter updates
// are lock-free atomics and cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY (to call): inherited from `GlobalAlloc::alloc` — the caller
    // supplies a valid non-zero-size `layout`, which is forwarded intact.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's, unmodified; `System.alloc`'s
        // own contract is exactly our caller's obligation.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            track_alloc(layout.size());
        }
        p
    }

    // SAFETY (to call): inherited — `ptr` must come from this allocator
    // with this `layout`, which is `System`'s own requirement.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded from our caller, whose
        // obligation matches `System.dealloc`'s exactly.
        unsafe { System.dealloc(ptr, layout) };
        track_dealloc(layout.size());
    }

    // SAFETY (to call): inherited — `ptr` was allocated here with
    // `layout`, and `new_size` is non-zero; all three are forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments forwarded verbatim; the contract is the same.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                track_alloc(new_size - layout.size());
            } else {
                track_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// Live bytes right now (all threads).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`] (all threads).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, starting a new measured region.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The test binary does not install the allocator (that would affect all
    // other tests' timing); the accounting logic is exercised through the
    // tracking functions directly, including from concurrent threads.
    use super::*;

    /// The counters are process-wide; these tests must not interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn helpers_are_consistent() {
        let _guard = LOCK.lock().unwrap();
        reset_peak();
        assert!(peak_bytes() >= current_bytes().saturating_sub(1));
    }

    #[test]
    fn concurrent_worker_allocations_aggregate_into_peak() {
        let _guard = LOCK.lock().unwrap();
        // Simulate a parallel partitioner: N workers each hold `per` bytes
        // live at the same instant (a barrier guarantees overlap). The peak
        // must see the *sum*, not one thread's share.
        const WORKERS: usize = 4;
        const PER: usize = 1 << 20;
        let baseline = current_bytes();
        reset_peak();
        let barrier = std::sync::Barrier::new(WORKERS);
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                scope.spawn(|| {
                    track_alloc(PER);
                    barrier.wait(); // all allocations live simultaneously
                    track_dealloc(PER);
                });
            }
        });
        assert!(
            peak_bytes() >= baseline + WORKERS * PER,
            "peak {} missed concurrent allocations (baseline {baseline})",
            peak_bytes()
        );
        assert!(current_bytes() <= baseline + WORKERS * PER, "live count failed to drain");
    }

    #[test]
    fn realloc_style_growth_moves_peak() {
        let _guard = LOCK.lock().unwrap();
        let before = current_bytes();
        reset_peak();
        track_alloc(100);
        track_alloc(400); // grow in place: only the delta is charged
        assert!(peak_bytes() >= before + 500);
        track_dealloc(500);
        assert!(current_bytes() <= before + 1);
    }
}
