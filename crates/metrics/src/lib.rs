//! Metrics and measurement utilities for partitioning experiments.
//!
//! * [`PartitionMetrics`] — an [`hep_graph::AssignSink`] that accumulates the
//!   paper's §5.1 performance metrics while a partitioner runs: replication
//!   factor, edge balance α, vertex-replica balance (Table 5) and per-degree
//!   replication (Figure 2).
//! * [`validity`] — exactly-once assignment checking, used by tests and the
//!   experiment harness as a guard on every partitioner.
//! * [`alloc_track`] — a counting global allocator measuring peak live bytes
//!   (the reproduction's substitute for "maximum resident set size").
//! * [`table`] — fixed-width text tables for paper-style experiment output.

pub mod alloc_track;
pub mod partition_metrics;
pub mod table;
pub mod validity;

pub use partition_metrics::PartitionMetrics;
pub use table::Table;
pub use validity::validate_assignment;
