//! Partitioning quality metrics (paper §2 and §5.1).

use hep_ds::DenseBitset;
use hep_graph::degrees::degree_bucket;
use hep_graph::{AssignSink, PartitionId, VertexId};

/// Accumulates metrics as a partitioner emits assignments.
#[derive(Clone, Debug)]
pub struct PartitionMetrics {
    k: u32,
    /// `V(p_i)`: vertices covered by each partition.
    covered: Vec<DenseBitset>,
    /// Edge count per partition.
    pub edge_counts: Vec<u64>,
    total_edges: u64,
}

impl PartitionMetrics {
    /// Empty metrics for `k` partitions over `num_vertices` ids.
    pub fn new(k: u32, num_vertices: u32) -> Self {
        PartitionMetrics {
            k,
            covered: (0..k).map(|_| DenseBitset::new(num_vertices as usize)).collect(),
            edge_counts: vec![0; k as usize],
            total_edges: 0,
        }
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Total edges assigned so far.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Per-vertex replica counts (number of partitions covering each vertex).
    pub fn replica_counts(&self) -> Vec<u32> {
        let n = self.covered.first().map_or(0, |b| b.capacity());
        let mut counts = vec![0u32; n];
        for set in &self.covered {
            for v in set.iter_ones() {
                counts[v as usize] += 1;
            }
        }
        counts
    }

    /// Replication factor `RF = Σ_i |V(p_i)| / |V_covered|` (§2). The
    /// denominator is the set of vertices incident to at least one assigned
    /// edge, which equals the paper's `|V|` on graphs without isolated
    /// vertices.
    pub fn replication_factor(&self) -> f64 {
        let counts = self.replica_counts();
        let covered = counts.iter().filter(|&&c| c > 0).count();
        if covered == 0 {
            return 0.0;
        }
        counts.iter().map(|&c| c as u64).sum::<u64>() as f64 / covered as f64
    }

    /// Edge balance factor `α = max_i |p_i| · k / |E|` (§2's constraint is
    /// `|p_i| ≤ α |E| / k`).
    pub fn balance_factor(&self) -> f64 {
        if self.total_edges == 0 {
            return 0.0;
        }
        let max = *self.edge_counts.iter().max().expect("k >= 1");
        max as f64 * self.k as f64 / self.total_edges as f64
    }

    /// Vertex-replica balance: `std / mean` of `|V(p_i)|` across partitions
    /// (Table 5's metric; lower is more balanced).
    pub fn vertex_balance(&self) -> f64 {
        let sizes: Vec<f64> = self.covered.iter().map(|s| s.count_ones() as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64;
        var.sqrt() / mean
    }

    /// Average replication factor per degree bucket `[1,10], [11,100], ...`
    /// (Figure 2). Returns `(avg_rf, vertex_count)` per bucket; buckets with
    /// no vertices report 0.
    pub fn degree_bucket_rf(&self, degrees: &[u32]) -> Vec<(f64, u64)> {
        let counts = self.replica_counts();
        let max_bucket = degrees.iter().map(|&d| degree_bucket(d)).max().unwrap_or(0);
        let mut sums = vec![0u64; max_bucket + 1];
        let mut nums = vec![0u64; max_bucket + 1];
        for (v, &d) in degrees.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let b = degree_bucket(d);
            sums[b] += counts[v] as u64;
            nums[b] += 1;
        }
        sums.into_iter()
            .zip(nums)
            .map(|(s, n)| if n == 0 { (0.0, 0) } else { (s as f64 / n as f64, n) })
            .collect()
    }

    /// Covered-vertex counts per partition `|V(p_i)|`.
    pub fn covered_counts(&self) -> Vec<u64> {
        self.covered.iter().map(|s| s.count_ones() as u64).collect()
    }
}

impl AssignSink for PartitionMetrics {
    fn assign(&mut self, u: VertexId, v: VertexId, p: PartitionId) {
        self.covered[p as usize].set(u);
        self.covered[p as usize].set(v);
        self.edge_counts[p as usize] += 1;
        self.total_edges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_star_example() {
        // Figure 1: star 0-(1,2,3), 0-(4,5,6) split into two partitions.
        // Vertex 0 is replicated twice; all others once. RF = 8/7.
        let mut m = PartitionMetrics::new(2, 7);
        for v in [1, 2, 3] {
            m.assign(0, v, 0);
        }
        for v in [4, 5, 6] {
            m.assign(0, v, 1);
        }
        assert!((m.replication_factor() - 8.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.balance_factor(), 1.0);
        assert_eq!(m.covered_counts(), vec![4, 4]);
    }

    #[test]
    fn replica_counts_are_distinct_partitions() {
        let mut m = PartitionMetrics::new(3, 4);
        m.assign(0, 1, 0);
        m.assign(0, 1, 0); // same partition again: no extra replica
        m.assign(0, 2, 2);
        assert_eq!(m.replica_counts(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn balance_factor_detects_imbalance() {
        let mut m = PartitionMetrics::new(2, 10);
        m.assign(0, 1, 0);
        m.assign(1, 2, 0);
        m.assign(2, 3, 0);
        m.assign(4, 5, 1);
        assert!((m.balance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vertex_balance_zero_when_equal() {
        let mut m = PartitionMetrics::new(2, 8);
        m.assign(0, 1, 0);
        m.assign(2, 3, 1);
        assert_eq!(m.vertex_balance(), 0.0);
        m.assign(4, 5, 1);
        assert!(m.vertex_balance() > 0.0);
    }

    #[test]
    fn degree_bucket_rf_buckets_correctly() {
        let mut m = PartitionMetrics::new(2, 4);
        // Vertex 0: deg 5 (bucket 0), replicated twice. Vertex 1: deg 50
        // (bucket 1), once. Vertices 2, 3: deg 1, once each.
        m.assign(0, 1, 0);
        m.assign(0, 2, 1);
        m.assign(1, 3, 0);
        let degrees = vec![5, 50, 1, 1];
        let buckets = m.degree_bucket_rf(&degrees);
        assert_eq!(buckets.len(), 2);
        assert!((buckets[0].0 - (2 + 1 + 1) as f64 / 3.0).abs() < 1e-12);
        assert_eq!(buckets[0].1, 3);
        assert_eq!(buckets[1], (1.0, 1));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = PartitionMetrics::new(4, 10);
        assert_eq!(m.replication_factor(), 0.0);
        assert_eq!(m.balance_factor(), 0.0);
        assert_eq!(m.total_edges(), 0);
    }

    #[test]
    fn agrees_with_bruteforce_on_real_partitioner() {
        use hep_graph::EdgePartitioner;
        let g = hep_gen::GraphSpec::ChungLu { n: 300, m: 2000, gamma: 2.2 }.generate(1);
        let mut metrics = PartitionMetrics::new(4, g.num_vertices);
        let mut collected = hep_graph::partitioner::CollectedAssignment::default();
        {
            let mut tee =
                hep_graph::partitioner::TeeSink { first: &mut metrics, second: &mut collected };
            hep_baselines::Hdrf::default().partition(&g, 4, &mut tee).unwrap();
        }
        // Brute-force RF from the collected assignment.
        let mut sets: Vec<std::collections::HashSet<u32>> =
            vec![Default::default(); g.num_vertices as usize];
        for (e, p) in &collected.assignments {
            sets[e.src as usize].insert(*p);
            sets[e.dst as usize].insert(*p);
        }
        let covered = sets.iter().filter(|s| !s.is_empty()).count();
        let rf = sets.iter().map(|s| s.len()).sum::<usize>() as f64 / covered as f64;
        assert!((metrics.replication_factor() - rf).abs() < 1e-12);
    }
}
