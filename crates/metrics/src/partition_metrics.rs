//! Partitioning quality metrics (paper §2 and §5.1).
//!
//! [`PartitionMetrics`] is a *sharded accumulator*: independent instances
//! built over disjoint slices of an assignment can be [`merged`] into the
//! metrics of the whole — every ingredient (covered-vertex bitsets, edge
//! counts) is a commutative monoid. [`PartitionMetrics::from_assignment`]
//! uses that to replay a [`CollectedAssignment`] in parallel on the
//! `hep-par` pool with bit-identical results at any thread count.
//!
//! [`merged`]: PartitionMetrics::merge
//! [`CollectedAssignment`]: hep_graph::partitioner::CollectedAssignment

use hep_ds::DenseBitset;
use hep_graph::degrees::degree_bucket;
use hep_graph::partitioner::CollectedAssignment;
use hep_graph::{AssignSink, PartitionId, VertexId};

/// Assignments per parallel replay chunk (constant: the decomposition must
/// not depend on the worker count).
const REPLAY_CHUNK: usize = 65_536;

/// Accumulates metrics as a partitioner emits assignments.
#[derive(Clone, Debug)]
pub struct PartitionMetrics {
    k: u32,
    /// `V(p_i)`: vertices covered by each partition.
    covered: Vec<DenseBitset>,
    /// Edge count per partition.
    pub edge_counts: Vec<u64>,
    total_edges: u64,
}

impl PartitionMetrics {
    /// Empty metrics for `k` partitions over `num_vertices` ids.
    pub fn new(k: u32, num_vertices: u32) -> Self {
        PartitionMetrics {
            k,
            covered: (0..k).map(|_| DenseBitset::new(num_vertices as usize)).collect(),
            edge_counts: vec![0; k as usize],
            total_edges: 0,
        }
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Folds another accumulator (built over a disjoint slice of the same
    /// assignment) into `self`: bitset unions and count sums. Panics if the
    /// two were created with different `k` or vertex-id capacities.
    pub fn merge(&mut self, other: &PartitionMetrics) {
        assert_eq!(self.k, other.k, "partition count mismatch");
        assert_eq!(
            self.covered.first().map(|b| b.capacity()),
            other.covered.first().map(|b| b.capacity()),
            "vertex-id capacity mismatch: accumulators must share num_vertices"
        );
        for (mine, theirs) in self.covered.iter_mut().zip(other.covered.iter()) {
            mine.union_with(theirs);
        }
        for (mine, theirs) in self.edge_counts.iter_mut().zip(other.edge_counts.iter()) {
            *mine += theirs;
        }
        self.total_edges += other.total_edges;
    }

    /// Scores a finished assignment by replaying it in parallel: fixed
    /// chunks of the assignment feed per-chunk accumulators, which are then
    /// merged per partition on the pool. Equivalent to (and bit-identical
    /// with) feeding every assignment through [`AssignSink::assign`]
    /// serially, at any `HEP_THREADS` setting.
    pub fn from_assignment(k: u32, num_vertices: u32, assignment: &CollectedAssignment) -> Self {
        let shards = hep_par::par_chunks(&assignment.assignments, REPLAY_CHUNK, |_, chunk| {
            let mut acc = PartitionMetrics::new(k, num_vertices);
            for &(e, p) in chunk {
                acc.assign(e.src, e.dst, p);
            }
            acc
        });
        if shards.len() == 1 {
            // hep-lint: allow(HL007) -- guarded by the len() == 1 check on the previous line
            return shards.into_iter().next().expect("one shard");
        }
        let mut merged = PartitionMetrics::new(k, num_vertices);
        if shards.is_empty() {
            return merged;
        }
        // Merge bitsets per partition on the pool (each task owns one
        // partition id, so no two tasks touch the same bitset).
        merged.covered = hep_par::Pool::current().par_map(k as usize, |p| {
            let mut bs = shards[0].covered[p].clone();
            for shard in &shards[1..] {
                bs.union_with(&shard.covered[p]);
            }
            bs
        });
        for shard in &shards {
            for (mine, theirs) in merged.edge_counts.iter_mut().zip(shard.edge_counts.iter()) {
                *mine += theirs;
            }
            merged.total_edges += shard.total_edges;
        }
        merged
    }

    /// Total edges assigned so far.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Per-vertex replica counts (number of partitions covering each vertex).
    ///
    /// Computed in parallel over fixed 64-bit-word ranges of the vertex id
    /// space: each task scans all `k` bitsets within its range, so no two
    /// tasks write the same counter and the result is exact.
    pub fn replica_counts(&self) -> Vec<u32> {
        const WORDS_PER_CHUNK: usize = 4096;
        let n = self.covered.first().map_or(0, |b| b.capacity());
        let ranges = hep_par::chunk_ranges(n.div_ceil(64), WORDS_PER_CHUNK);
        let chunks = hep_par::Pool::current().par_map(ranges.len(), |i| {
            let (wa, wb) = ranges[i];
            let lo = wa * 64;
            let mut counts = vec![0u32; ((wb * 64).min(n)) - lo];
            for set in &self.covered {
                for (wi, &word) in set.words()[wa..wb].iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        counts[(wi << 6) + word.trailing_zeros() as usize] += 1;
                        word &= word - 1;
                    }
                }
            }
            counts
        });
        let mut counts = Vec::with_capacity(n);
        for c in chunks {
            counts.extend(c);
        }
        counts
    }

    /// Replication factor `RF = Σ_i |V(p_i)| / |V_covered|` (§2). The
    /// denominator is the set of vertices incident to at least one assigned
    /// edge, which equals the paper's `|V|` on graphs without isolated
    /// vertices.
    ///
    /// Word-level: the numerator is a popcount per cover set, the
    /// denominator one OR-and-popcount sweep over the family
    /// ([`DenseBitset::union_count`]) — no per-vertex replica array is
    /// materialized. Exactly equal to the per-vertex computation (integer
    /// sums, same division).
    pub fn replication_factor(&self) -> f64 {
        let total: u64 = self.covered.iter().map(|s| s.count_ones() as u64).sum();
        let covered = DenseBitset::union_count(&self.covered);
        if covered == 0 {
            return 0.0;
        }
        total as f64 / covered as f64
    }

    /// Edge balance factor `α = max_i |p_i| · k / |E|` (§2's constraint is
    /// `|p_i| ≤ α |E| / k`).
    pub fn balance_factor(&self) -> f64 {
        if self.total_edges == 0 {
            return 0.0;
        }
        // hep-lint: allow(HL007) -- constructors reject k == 0, so edge_counts is non-empty
        let max = *self.edge_counts.iter().max().expect("k >= 1");
        max as f64 * self.k as f64 / self.total_edges as f64
    }

    /// Vertex-replica balance: `std / mean` of `|V(p_i)|` across partitions
    /// (Table 5's metric; lower is more balanced).
    pub fn vertex_balance(&self) -> f64 {
        let sizes: Vec<f64> = self.covered.iter().map(|s| s.count_ones() as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64;
        var.sqrt() / mean
    }

    /// Average replication factor per degree bucket `[1,10], [11,100], ...`
    /// (Figure 2). Returns `(avg_rf, vertex_count)` per bucket; buckets with
    /// no vertices report 0.
    ///
    /// `degrees` may be longer than the vertex-id capacity the metrics
    /// were created with: the excess ids cannot have been covered by any
    /// partition, so they contribute a replica count of 0 to their bucket
    /// instead of panicking on an out-of-bounds index.
    pub fn degree_bucket_rf(&self, degrees: &[u32]) -> Vec<(f64, u64)> {
        let counts = self.replica_counts();
        let max_bucket = degrees.iter().map(|&d| degree_bucket(d)).max().unwrap_or(0);
        let mut sums = vec![0u64; max_bucket + 1];
        let mut nums = vec![0u64; max_bucket + 1];
        for (v, &d) in degrees.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let b = degree_bucket(d);
            sums[b] += counts.get(v).copied().unwrap_or(0) as u64;
            nums[b] += 1;
        }
        sums.into_iter()
            .zip(nums)
            .map(|(s, n)| if n == 0 { (0.0, 0) } else { (s as f64 / n as f64, n) })
            .collect()
    }

    /// Covered-vertex counts per partition `|V(p_i)|`.
    pub fn covered_counts(&self) -> Vec<u64> {
        self.covered.iter().map(|s| s.count_ones() as u64).collect()
    }
}

impl AssignSink for PartitionMetrics {
    fn assign(&mut self, u: VertexId, v: VertexId, p: PartitionId) {
        self.covered[p as usize].set(u);
        self.covered[p as usize].set(v);
        self.edge_counts[p as usize] += 1;
        self.total_edges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_star_example() {
        // Figure 1: star 0-(1,2,3), 0-(4,5,6) split into two partitions.
        // Vertex 0 is replicated twice; all others once. RF = 8/7.
        let mut m = PartitionMetrics::new(2, 7);
        for v in [1, 2, 3] {
            m.assign(0, v, 0);
        }
        for v in [4, 5, 6] {
            m.assign(0, v, 1);
        }
        assert!((m.replication_factor() - 8.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.balance_factor(), 1.0);
        assert_eq!(m.covered_counts(), vec![4, 4]);
    }

    #[test]
    fn replica_counts_are_distinct_partitions() {
        let mut m = PartitionMetrics::new(3, 4);
        m.assign(0, 1, 0);
        m.assign(0, 1, 0); // same partition again: no extra replica
        m.assign(0, 2, 2);
        assert_eq!(m.replica_counts(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn balance_factor_detects_imbalance() {
        let mut m = PartitionMetrics::new(2, 10);
        m.assign(0, 1, 0);
        m.assign(1, 2, 0);
        m.assign(2, 3, 0);
        m.assign(4, 5, 1);
        assert!((m.balance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vertex_balance_zero_when_equal() {
        let mut m = PartitionMetrics::new(2, 8);
        m.assign(0, 1, 0);
        m.assign(2, 3, 1);
        assert_eq!(m.vertex_balance(), 0.0);
        m.assign(4, 5, 1);
        assert!(m.vertex_balance() > 0.0);
    }

    #[test]
    fn degree_bucket_rf_buckets_correctly() {
        let mut m = PartitionMetrics::new(2, 4);
        // Vertex 0: deg 5 (bucket 0), replicated twice. Vertex 1: deg 50
        // (bucket 1), once. Vertices 2, 3: deg 1, once each.
        m.assign(0, 1, 0);
        m.assign(0, 2, 1);
        m.assign(1, 3, 0);
        let degrees = vec![5, 50, 1, 1];
        let buckets = m.degree_bucket_rf(&degrees);
        assert_eq!(buckets.len(), 2);
        assert!((buckets[0].0 - (2 + 1 + 1) as f64 / 3.0).abs() < 1e-12);
        assert_eq!(buckets[0].1, 3);
        assert_eq!(buckets[1], (1.0, 1));
    }

    #[test]
    fn word_level_rf_equals_per_vertex_rf() {
        // The word-level numerator/denominator must agree exactly with the
        // materialized per-vertex replica counts.
        let mut m = PartitionMetrics::new(5, 300);
        for i in 0..280u32 {
            m.assign(i, (i * 7 + 1) % 300, i % 5);
            m.assign(i, (i * 13 + 2) % 300, (i * 3) % 5);
        }
        let counts = m.replica_counts();
        let covered = counts.iter().filter(|&&c| c > 0).count();
        let expect = counts.iter().map(|&c| c as u64).sum::<u64>() as f64 / covered as f64;
        assert_eq!(m.replication_factor().to_bits(), expect.to_bits());
    }

    #[test]
    fn degree_bucket_rf_tolerates_longer_degree_slice() {
        // Metrics over 4 vertex ids, caller passes 7 degrees: the excess
        // ids were never covered, so they count as replica 0 in their
        // bucket — no out-of-bounds panic.
        let mut m = PartitionMetrics::new(2, 4);
        m.assign(0, 1, 0);
        m.assign(0, 2, 1);
        let degrees = vec![5, 5, 5, 0, 3, 50, 7];
        let buckets = m.degree_bucket_rf(&degrees);
        assert_eq!(buckets.len(), 2);
        // Bucket 0: vertices 0 (2 replicas), 1, 2 (1 each), 4, 6 (0 each).
        assert!((buckets[0].0 - 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(buckets[0].1, 5);
        assert_eq!(buckets[1], (0.0, 1));
    }

    #[test]
    #[should_panic(expected = "vertex-id capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        // Same k, different num_vertices: a clear panic instead of the
        // bitset internals' capacity assert firing mid-union.
        let mut a = PartitionMetrics::new(2, 10);
        let b = PartitionMetrics::new(2, 20);
        a.merge(&b);
    }

    #[test]
    fn replica_counts_and_vertex_balance_are_capacity_safe() {
        // Both derive every bound from the accumulator's own state (the
        // capacity-mismatch class cannot reach them through arguments).
        let mut m = PartitionMetrics::new(3, 100);
        m.assign(0, 99, 2);
        let counts = m.replica_counts();
        assert_eq!(counts.len(), 100);
        assert_eq!((counts[0], counts[99]), (1, 1));
        assert!(m.vertex_balance() > 0.0);
        let empty = PartitionMetrics::new(3, 0);
        assert_eq!(empty.replica_counts(), Vec::<u32>::new());
        assert_eq!(empty.vertex_balance(), 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = PartitionMetrics::new(4, 10);
        assert_eq!(m.replication_factor(), 0.0);
        assert_eq!(m.balance_factor(), 0.0);
        assert_eq!(m.total_edges(), 0);
    }

    #[test]
    fn merge_equals_serial_accumulation() {
        let edges = [(0u32, 1u32, 0u32), (1, 2, 1), (2, 3, 0), (3, 4, 2), (4, 0, 1)];
        let mut whole = PartitionMetrics::new(3, 5);
        let mut left = PartitionMetrics::new(3, 5);
        let mut right = PartitionMetrics::new(3, 5);
        for (i, &(u, v, p)) in edges.iter().enumerate() {
            whole.assign(u, v, p);
            if i < 2 {
                left.assign(u, v, p);
            } else {
                right.assign(u, v, p);
            }
        }
        left.merge(&right);
        assert_eq!(left.replica_counts(), whole.replica_counts());
        assert_eq!(left.edge_counts, whole.edge_counts);
        assert_eq!(left.total_edges(), whole.total_edges());
        assert_eq!(left.replication_factor(), whole.replication_factor());
    }

    #[test]
    fn from_assignment_matches_sink_replay_at_any_thread_count() {
        use hep_graph::EdgePartitioner;
        let g = hep_gen::GraphSpec::ChungLu { n: 2000, m: 15_000, gamma: 2.2 }.generate(8);
        let k = 8;
        let mut serial = PartitionMetrics::new(k, g.num_vertices);
        let mut collected = hep_graph::partitioner::CollectedAssignment::default();
        {
            let mut tee =
                hep_graph::partitioner::TeeSink { first: &mut serial, second: &mut collected };
            hep_baselines::Hdrf::default().partition(&g, k, &mut tee).unwrap();
        }
        for threads in [1, 8] {
            let replayed = hep_par::with_threads(threads, || {
                PartitionMetrics::from_assignment(k, g.num_vertices, &collected)
            });
            assert_eq!(replayed.replica_counts(), serial.replica_counts());
            assert_eq!(replayed.edge_counts, serial.edge_counts);
            assert_eq!(replayed.total_edges(), serial.total_edges());
            assert_eq!(replayed.replication_factor(), serial.replication_factor());
            assert_eq!(replayed.balance_factor(), serial.balance_factor());
        }
    }

    #[test]
    fn from_assignment_empty_is_zero() {
        let a = hep_graph::partitioner::CollectedAssignment::default();
        let m = PartitionMetrics::from_assignment(4, 100, &a);
        assert_eq!(m.total_edges(), 0);
        assert_eq!(m.replication_factor(), 0.0);
    }

    #[test]
    fn agrees_with_bruteforce_on_real_partitioner() {
        use hep_graph::EdgePartitioner;
        let g = hep_gen::GraphSpec::ChungLu { n: 300, m: 2000, gamma: 2.2 }.generate(1);
        let mut metrics = PartitionMetrics::new(4, g.num_vertices);
        let mut collected = hep_graph::partitioner::CollectedAssignment::default();
        {
            let mut tee =
                hep_graph::partitioner::TeeSink { first: &mut metrics, second: &mut collected };
            hep_baselines::Hdrf::default().partition(&g, 4, &mut tee).unwrap();
        }
        // Brute-force RF from the collected assignment.
        let mut sets: Vec<std::collections::HashSet<u32>> =
            vec![Default::default(); g.num_vertices as usize];
        for (e, p) in &collected.assignments {
            sets[e.src as usize].insert(*p);
            sets[e.dst as usize].insert(*p);
        }
        let covered = sets.iter().filter(|s| !s.is_empty()).count();
        let rf = sets.iter().map(|s| s.len()).sum::<usize>() as f64 / covered as f64;
        assert!((metrics.replication_factor() - rf).abs() < 1e-12);
    }
}
