//! Fixed-width text tables for paper-style experiment output.

/// A simple left-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The column headers (for machine-readable dumps of rendered tables).
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The appended rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(|r| r.len()).chain([self.headers.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// `1234567` → `"1.18 MiB"`.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Seconds with adaptive precision (`0.0042 s`, `1.24 s`, `132 s`).
pub fn format_secs(secs: f64) -> String {
    if secs < 0.01 {
        format!("{secs:.4} s")
    } else if secs < 100.0 {
        format!("{secs:.2} s")
    } else {
        format!("{secs:.0} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["graph", "rf", "time"]);
        t.row(["OK", "2.51", "38 s"]);
        t.row(["IT-analog", "1.06", "101 s"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("graph"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "rf" column starts at the same offset in all rows.
        let off = lines[0].find("rf").unwrap();
        assert_eq!(&lines[2][off..off + 4], "2.51");
        assert_eq!(&lines[3][off..off + 4], "1.06");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(1234567), "1.18 MiB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(format_secs(0.0042), "0.0042 s");
        assert_eq!(format_secs(1.238), "1.24 s");
        assert_eq!(format_secs(132.4), "132 s");
    }
}
