//! Exactly-once assignment validation (§2: the partitions are disjoint and
//! cover `E`). Used as a guard by the experiment harness: an experiment that
//! reports metrics for an invalid partitioning would be meaningless.

use hep_ds::FxHashMap;
use hep_graph::partitioner::CollectedAssignment;
use hep_graph::{Edge, EdgeList};

/// Checks that `assignment` places every edge of `graph` exactly once on a
/// partition `< k`. Returns a human-readable description of the first
/// violation.
pub fn validate_assignment(
    graph: &EdgeList,
    assignment: &CollectedAssignment,
    k: u32,
) -> Result<(), String> {
    if assignment.assignments.len() != graph.edges.len() {
        return Err(format!(
            "assigned {} edges but the graph has {}",
            assignment.assignments.len(),
            graph.edges.len()
        ));
    }
    let mut expect: FxHashMap<Edge, i64> = FxHashMap::default();
    expect.reserve(graph.edges.len());
    for e in &graph.edges {
        *expect.entry(e.canonical()).or_insert(0) += 1;
    }
    for (e, p) in &assignment.assignments {
        if *p >= k {
            return Err(format!("edge {e:?} assigned to out-of-range partition {p} (k={k})"));
        }
        match expect.get_mut(&e.canonical()) {
            Some(c) if *c > 0 => *c -= 1,
            Some(_) => return Err(format!("edge {e:?} assigned more than once")),
            None => return Err(format!("edge {e:?} does not exist in the input")),
        }
    }
    if let Some((e, _)) = expect.iter().find(|(_, &c)| c != 0) {
        return Err(format!("edge {e:?} never assigned"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_graph::AssignSink;

    fn graph() -> EdgeList {
        EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn accepts_valid_assignment() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(2, 1, 1); // reversed direction still matches canonically
        a.assign(2, 0, 1);
        assert!(validate_assignment(&g, &a, 2).is_ok());
    }

    #[test]
    fn rejects_missing_edge() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 2, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("assigned 2 edges"), "{err}");
    }

    #[test]
    fn rejects_double_assignment() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 0, 1);
        a.assign(1, 2, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn rejects_phantom_edge() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 2, 1);
        a.assign(0, 3, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 5);
        a.assign(1, 2, 0);
        a.assign(2, 0, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("out-of-range"), "{err}");
    }

    #[test]
    fn duplicate_input_edges_need_matching_multiplicity() {
        let g = EdgeList::from_pairs([(0, 1), (0, 1)]);
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 0, 1);
        assert!(validate_assignment(&g, &a, 2).is_ok());
    }
}
