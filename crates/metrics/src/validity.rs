//! Exactly-once assignment validation (§2: the partitions are disjoint and
//! cover `E`). Used as a guard by the experiment harness: an experiment that
//! reports metrics for an invalid partitioning would be meaningless.
//!
//! The check runs concurrently on the `hep-par` pool: fixed chunks of both
//! edge streams are canonicalized and bucketed into a fixed number of hash
//! shards in parallel, then each shard independently verifies multiset
//! equality between its slice of the graph and its slice of the assignment.
//! Both decompositions depend only on the input (never the worker count),
//! and the reported violation is the one from the lowest-numbered shard, so
//! the verdict — including the error text — is deterministic at any
//! `HEP_THREADS` setting.

use hep_ds::{FxHashMap, FxHasher};
use hep_graph::partitioner::CollectedAssignment;
use hep_graph::{Edge, EdgeList};
use std::hash::{Hash, Hasher};

/// Hash shards for the concurrent multiset check (constant: part of the
/// deterministic decomposition).
const SHARDS: usize = 32;
/// Edges per bucketing chunk (constant, same reason).
const CHUNK: usize = 65_536;

fn shard_of(e: &Edge) -> usize {
    let mut h = FxHasher::default();
    e.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Canonicalizes a chunk's edges into per-shard buckets.
fn bucket(edges: &[Edge]) -> Vec<Vec<Edge>> {
    let mut buckets = vec![Vec::new(); SHARDS];
    for e in edges {
        let c = e.canonical();
        buckets[shard_of(&c)].push(c);
    }
    buckets
}

/// Checks that `assignment` places every edge of `graph` exactly once on a
/// partition `< k`. Returns a human-readable description of the first
/// violation (first by shard, deterministically).
pub fn validate_assignment(
    graph: &EdgeList,
    assignment: &CollectedAssignment,
    k: u32,
) -> Result<(), String> {
    if assignment.assignments.len() != graph.edges.len() {
        return Err(format!(
            "assigned {} edges but the graph has {}",
            assignment.assignments.len(),
            graph.edges.len()
        ));
    }
    // Phase 1: concurrent partition-range check + canonical bucketing of
    // the assigned edges, and canonical bucketing of the graph's edges.
    let assigned_chunks = hep_par::par_chunks(&assignment.assignments, CHUNK, |_, chunk| {
        let mut buckets = vec![Vec::new(); SHARDS];
        let mut range_err = None;
        for (e, p) in chunk {
            if *p >= k && range_err.is_none() {
                range_err =
                    Some(format!("edge {e:?} assigned to out-of-range partition {p} (k={k})"));
            }
            let c = e.canonical();
            buckets[shard_of(&c)].push(c);
        }
        (buckets, range_err)
    });
    // First out-of-range violation in chunk order (= assignment order).
    if let Some(err) = assigned_chunks.iter().find_map(|(_, e)| e.clone()) {
        return Err(err);
    }
    let graph_chunks = hep_par::par_chunks(&graph.edges, CHUNK, |_, chunk| bucket(chunk));
    // Phase 2: per-shard multiset equality, concurrently; each shard sees
    // every occurrence of its edges and none of any other shard's.
    // Each shard reports (scan violation, leftover violation); scan
    // violations outrank leftovers globally, mirroring the serial check
    // (a double assignment always implies some other edge went missing —
    // report the cause, not the symptom).
    let verdicts = hep_par::Pool::current().par_map(SHARDS, |s| {
        let mut expect: FxHashMap<Edge, i64> = FxHashMap::default();
        for chunk in &graph_chunks {
            for e in &chunk[s] {
                *expect.entry(*e).or_insert(0) += 1;
            }
        }
        for (chunk, _) in &assigned_chunks {
            for e in &chunk[s] {
                match expect.get_mut(e) {
                    Some(c) if *c > 0 => *c -= 1,
                    Some(_) => return (Some(format!("edge {e:?} assigned more than once")), None),
                    None => return (Some(format!("edge {e:?} does not exist in the input")), None),
                }
            }
        }
        // Report the smallest offending edge so the message is stable
        // across hasher layouts, not whichever the map yields first.
        let leftover = expect
            .iter() // hep-lint: allow(HL001) -- reduced with min(); the result is independent of iteration order
            .filter(|&(_, &c)| c != 0)
            .map(|(e, _)| *e)
            .min_by_key(|e| (e.src, e.dst))
            .map(|e| format!("edge {e:?} never assigned"));
        (None, leftover)
    });
    if let Some(err) = verdicts.iter().find_map(|(scan, _)| scan.clone()) {
        return Err(err);
    }
    match verdicts.into_iter().find_map(|(_, leftover)| leftover) {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_graph::AssignSink;

    fn graph() -> EdgeList {
        EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn accepts_valid_assignment() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(2, 1, 1); // reversed direction still matches canonically
        a.assign(2, 0, 1);
        assert!(validate_assignment(&g, &a, 2).is_ok());
    }

    #[test]
    fn rejects_missing_edge() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 2, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("assigned 2 edges"), "{err}");
    }

    #[test]
    fn rejects_double_assignment() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 0, 1);
        a.assign(1, 2, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn rejects_phantom_edge() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 2, 1);
        a.assign(0, 3, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let g = graph();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 5);
        a.assign(1, 2, 0);
        a.assign(2, 0, 1);
        let err = validate_assignment(&g, &a, 2).unwrap_err();
        assert!(err.contains("out-of-range"), "{err}");
    }

    #[test]
    fn duplicate_input_edges_need_matching_multiplicity() {
        let g = EdgeList::from_pairs([(0, 1), (0, 1)]);
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        a.assign(1, 0, 1);
        assert!(validate_assignment(&g, &a, 2).is_ok());
    }
}
