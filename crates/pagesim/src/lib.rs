//! Paging simulation for the §5.5 comparison (Table 6).
//!
//! The paper restricts NE++'s memory with cgroups and swaps to an SSD,
//! counting hard page faults. This crate reproduces the experiment in
//! simulation: NE++ records the sequence of column-array word accesses
//! (`HepConfig::record_trace`), and an LRU page cache of configurable size
//! replays the trace counting faults. The modeled run-time is
//! `cpu_time + faults · fault_penalty`, with the penalty defaulting to a
//! typical SSD 4 KiB random-read latency.
//!
//! The column array dominates the footprint (§4.2) and is the only
//! irregularly-accessed large structure, so restricting the cache to it
//! captures the mechanism behind Table 6's blow-up.

pub mod lru;
pub mod replay;

pub use lru::LruPageCache;
pub use replay::{replay_trace, PagingStats};
