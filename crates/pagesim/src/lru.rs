//! A classic LRU page cache over `u64` page ids.

use hep_ds::FxHashMap;

const NIL: usize = usize::MAX;

struct Node {
    page: u64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache; [`LruPageCache::access`] reports hit/miss and
/// evicts the least-recently-used page on overflow.
pub struct LruPageCache {
    capacity: usize,
    map: FxHashMap<u64, usize>,
    nodes: Vec<Node>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruPageCache {
    /// Creates a cache holding up to `capacity` pages (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruPageCache {
            capacity,
            map: FxHashMap::default(),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no page is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Touches `page`; returns true on a hit, false on a fault (after which
    /// the page is resident).
    pub fn access(&mut self, page: u64) -> bool {
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        // Fault: evict if at capacity, reusing the evicted slot.
        let slot = if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].page);
            self.nodes[victim].page = page;
            victim
        } else {
            self.nodes.push(Node { page, prev: NIL, next: NIL });
            self.nodes.len() - 1
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = LruPageCache::new(2);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(c.access(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruPageCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut c = LruPageCache::new(1);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = LruPageCache::new(0);
        assert!(!c.access(7));
        assert!(c.access(7));
    }

    #[test]
    fn working_set_within_capacity_never_refaults() {
        let mut c = LruPageCache::new(8);
        let mut faults = 0;
        for round in 0..10 {
            for p in 0..8u64 {
                if !c.access(p) {
                    faults += 1;
                    assert_eq!(round, 0, "fault after warm-up");
                }
            }
        }
        assert_eq!(faults, 8);
    }

    #[test]
    fn sequential_loop_larger_than_capacity_always_faults() {
        // The classic LRU worst case: cyclic scan of capacity+1 pages.
        let mut c = LruPageCache::new(4);
        let mut faults = 0;
        for _ in 0..3 {
            for p in 0..5u64 {
                if !c.access(p) {
                    faults += 1;
                }
            }
        }
        assert_eq!(faults, 15);
    }
}
