//! Trace replay: word-access trace → page-fault counts → modeled run-time.

use crate::lru::LruPageCache;

/// Outcome of replaying a trace at a given cache size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagingStats {
    /// Total page touches.
    pub accesses: u64,
    /// Hard faults (misses).
    pub faults: u64,
    /// Pages the cache could hold.
    pub capacity_pages: u64,
}

impl PagingStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.faults as f64 / self.accesses as f64
        }
    }

    /// Modeled run-time: unconstrained cpu seconds plus per-fault penalty
    /// (default SSD 4 KiB random read ≈ 100 µs, the regime of Table 6).
    pub fn modeled_runtime(&self, cpu_seconds: f64, fault_penalty: f64) -> f64 {
        cpu_seconds + self.faults as f64 * fault_penalty
    }
}

/// Replays a trace of column-array *word indices* through an LRU cache.
/// `words_per_page` is the page size in u32 entries (4096-byte pages hold
/// 1024 entries); `capacity_pages` is the simulated memory limit.
pub fn replay_trace(trace: &[u64], words_per_page: u64, capacity_pages: u64) -> PagingStats {
    assert!(words_per_page > 0, "page size must be positive");
    let mut cache = LruPageCache::new(capacity_pages.max(1) as usize);
    let mut faults = 0u64;
    for &idx in trace {
        if !cache.access(idx / words_per_page) {
            faults += 1;
        }
    }
    PagingStats { accesses: trace.len() as u64, faults, capacity_pages: capacity_pages.max(1) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn words_map_to_pages() {
        // Words 0..1023 are one page; 1024 starts the next.
        let trace = vec![0, 1, 512, 1023, 1024];
        let stats = replay_trace(&trace, 1024, 4);
        assert_eq!(stats.faults, 2);
        assert_eq!(stats.accesses, 5);
    }

    #[test]
    fn enough_memory_means_compulsory_faults_only() {
        let trace: Vec<u64> = (0..10_000u64).map(|i| (i * 37) % 4096).collect();
        let stats = replay_trace(&trace, 1024, 64);
        assert_eq!(stats.faults, 4); // 4096 words = 4 pages
        assert!(stats.hit_ratio() > 0.99);
    }

    #[test]
    fn modeled_runtime_adds_penalty() {
        let stats = PagingStats { accesses: 100, faults: 10, capacity_pages: 1 };
        let t = stats.modeled_runtime(1.0, 0.1);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let stats = replay_trace(&[], 1024, 4);
        assert_eq!(stats.faults, 0);
        assert_eq!(stats.hit_ratio(), 1.0);
    }

    proptest! {
        /// More memory never causes more faults (LRU is a stack algorithm —
        /// it has the inclusion property).
        #[test]
        fn faults_monotone_in_capacity(
            trace in proptest::collection::vec(0u64..8192, 1..2000),
            cap in 1u64..16,
        ) {
            let small = replay_trace(&trace, 256, cap);
            let large = replay_trace(&trace, 256, cap + 1);
            prop_assert!(large.faults <= small.faults);
        }
    }

    /// End-to-end: an actual NE++ trace faults more as memory shrinks.
    #[test]
    fn nepp_trace_blows_up_under_memory_pressure() {
        use hep_graph::partitioner::CollectedAssignment;
        let g = hep_gen::GraphSpec::ChungLu { n: 2000, m: 15_000, gamma: 2.2 }.generate(1);
        let mut config = hep_core::HepConfig::with_tau(10.0);
        config.record_trace = true;
        let hep = hep_core::Hep { config };
        let mut sink = CollectedAssignment::default();
        let report = hep.partition_with_report(&g, 8, &mut sink).unwrap();
        let trace = report.trace.expect("trace recorded");
        let total_pages = (report.inmem_edges * 2).div_ceil(1024).max(1);
        let full = replay_trace(&trace, 1024, total_pages);
        let half = replay_trace(&trace, 1024, (total_pages / 2).max(1));
        let tenth = replay_trace(&trace, 1024, (total_pages / 10).max(1));
        assert!(half.faults >= full.faults);
        assert!(tenth.faults > full.faults, "tenth {} full {}", tenth.faults, full.faults);
    }
}
