//! Deterministic parallel execution primitives for the HEP workspace.
//!
//! Every parallel code path in this workspace must produce **bit-identical
//! output at any thread count** — the repo-wide determinism invariant that
//! makes experiments reproducible and tests meaningful. This crate provides
//! the substrate that makes that invariant cheap to uphold:
//!
//! * Work is always split into a **fixed chunk decomposition** that depends
//!   only on the input size, never on the worker count. Threads race over
//!   *which worker executes a chunk*, not over *what the chunks are*.
//! * Results come back **ordered by chunk index** ([`Pool::par_map`]), and
//!   reductions fold partial results **in chunk order**
//!   ([`Pool::par_reduce`]) — so even floating-point accumulation is stable
//!   across thread counts (the summation tree is fixed by the chunking).
//! * Randomized chunk work derives its stream from the chunk index
//!   (`SplitMix64::split(chunk_index)` in `hep-ds`), never from a shared
//!   generator.
//!
//! The worker count comes from the `HEP_THREADS` environment variable
//! (default: available parallelism; `1` forces serial in-place execution
//! with no threads spawned). [`set_threads`] overrides it at runtime, which
//! the determinism test-suite uses to compare 1-thread and 8-thread runs in
//! one process.
//!
//! The pool is *scoped*: each call spawns OS threads via
//! [`std::thread::scope`] and joins them before returning, so there is no
//! global worker state, no shutdown ordering, and worker panics propagate to
//! the caller. Spawn cost (~tens of microseconds) is amortized by chunk
//! sizes in the tens of thousands of items; callers with tiny inputs fall
//! back to inline serial execution automatically.

use hep_ds::sync;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override: 0 = not yet resolved (read `HEP_THREADS`).
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    match hep_ds::env_registry::read("HEP_THREADS") {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        None => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

/// The effective worker count: [`set_threads`] override if set, otherwise
/// `HEP_THREADS`, otherwise available parallelism.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = default_threads();
    // Publish so the env var is read once; first writer wins, ties agree.
    // hep-lint: allow(HL014) -- the discard is the point: racing initializers compute identical values, so losing the CAS is harmless
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    resolved
}

/// Overrides the worker count process-wide (tests and benches compare
/// serial vs parallel runs this way). `0` re-resolves from the environment
/// on the next use. Output of the workspace's parallel components does not
/// depend on this value — that is the point of the crate.
pub fn set_threads(n: usize) {
    THREADS.store(if n == 0 { 0 } else { n }, Ordering::Relaxed);
}

/// Runs `f` with the pool width forced to `threads`, restoring the
/// previous setting afterwards (also on panic). Concurrent callers
/// serialize on an internal lock, so each closure really executes at its
/// requested width — without this, two thread-invariance tests running in
/// the same test binary could override each other mid-run and silently
/// compare two runs of the *same* width. This is the supported way for
/// tests and benches to pin a width; plain [`set_threads`] is best kept
/// for process setup.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    static LOCK: Mutex<()> = Mutex::new(());
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.store(self.0, Ordering::Relaxed);
        }
    }
    let _guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _restore = Restore(THREADS.load(Ordering::Relaxed));
    set_threads(threads);
    f()
}

/// A handle carrying a worker count; all primitives are methods on it.
///
/// `Pool` is plain data — it owns no threads. Each primitive call spawns
/// scoped workers and joins them before returning.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (`0` = available parallelism).
    pub fn new(threads: usize) -> Pool {
        Pool { threads: if threads == 0 { available() } else { threads } }
    }

    /// The process-wide pool configured by `HEP_THREADS` / [`set_threads`].
    pub fn current() -> Pool {
        Pool { threads: threads() }
    }

    /// Worker count of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), ..., f(tasks - 1)` and returns the results **in
    /// task order**, regardless of which worker executed which task. Tasks
    /// are claimed dynamically (an atomic cursor), so irregular task costs
    /// balance automatically.
    ///
    /// With one worker (or fewer than two tasks) this runs inline on the
    /// caller's thread, spawning nothing.
    pub fn par_map<U, F>(&self, tasks: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let slots: Vec<Mutex<Option<U>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads.min(tasks))
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        let r = f(i);
                        *sync::lock(&slots[i]) = Some(r);
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            // hep-lint: allow(HL007) -- the scope joined all workers, and workers only exit the fetch_add loop once every index < tasks is claimed and stored
            .map(|s| sync::into_inner(s).expect("task ran"))
            .collect()
    }

    /// Runs `f` for every task index, discarding results.
    pub fn par_for_each<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.par_map(tasks, f);
    }

    /// Like [`Pool::par_for_each`], but each worker first builds a private
    /// state with `init` (scratch buffers, per-worker accumulators) that is
    /// passed to every task it executes. The per-worker states are returned
    /// **unordered** — anything folded out of them must be order-insensitive,
    /// or the caller should use [`Pool::par_map`] instead.
    pub fn par_for_each_init<S, I, F>(&self, tasks: usize, init: I, f: F) -> Vec<S>
    where
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        if self.threads <= 1 || tasks <= 1 {
            let mut state = init();
            for i in 0..tasks {
                f(&mut state, i);
            }
            return vec![state];
        }
        let next = AtomicUsize::new(0);
        let states: Mutex<Vec<S>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads.min(tasks))
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            f(&mut state, i);
                        }
                        sync::lock(&states).push(state);
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        sync::into_inner(states)
    }

    /// Maps every task in parallel, then folds the partial results **in
    /// task order** on the calling thread. Because the fold order is fixed
    /// by the task decomposition, the result is identical at any thread
    /// count even for non-associative accumulation (floating point).
    pub fn par_reduce<T, A, M, F>(&self, tasks: usize, map: M, init: A, mut fold: F) -> A
    where
        T: Send,
        M: Fn(usize) -> T + Sync,
        F: FnMut(A, T) -> A,
    {
        let mut acc = init;
        for part in self.par_map(tasks, map) {
            acc = fold(acc, part);
        }
        acc
    }

    /// Runs a bulk-synchronous round loop on **persistent workers**: one
    /// thread spawn per call instead of one per round, for callers whose
    /// rounds are far too small to amortize [`Pool::par_map`]'s spawn cost
    /// (e.g. the refine commit, whose conflict groups hold at most `k / 2`
    /// moves each).
    ///
    /// The protocol alternates between the caller's thread and the
    /// workers, synchronized by barriers:
    ///
    /// 1. `plan` runs on the calling thread with **exclusive** access to
    ///    `state` and the previous round's results (in task order; empty
    ///    on the first call). It returns the next round's tasks, or `None`
    ///    to stop.
    /// 2. The workers execute `work` on every task of the round
    ///    concurrently, with **shared** access to `state` (tasks are
    ///    claimed from an atomic cursor, so irregular costs balance).
    ///
    /// `state` is handed back and forth under a `RwLock`, but the barriers
    /// guarantee the lock is never contended — the alternation is the
    /// synchronization, the lock only carries the aliasing proof. A panic
    /// in `plan` or `work` tears the loop down and propagates to the
    /// caller. With one worker (or when `plan` never emits more than one
    /// task) everything runs inline on the calling thread.
    ///
    /// Determinism contract: results reach `plan` in task order and `plan`
    /// is the only writer of `state`, so — as with [`Pool::par_map`] — the
    /// outcome depends only on the task decomposition `plan` produces,
    /// never on the worker count. Callers remain responsible for emitting
    /// rounds whose tasks commute (or are independent) under `work`.
    pub fn par_rounds<S, T, U, P, W>(&self, state: &mut S, mut plan: P, work: W)
    where
        S: Send + Sync,
        T: Send + Sync,
        U: Send,
        P: FnMut(&mut S, Vec<U>) -> Option<Vec<T>>,
        W: Fn(&S, &T) -> U + Sync,
    {
        if self.threads <= 1 {
            let mut results: Vec<U> = Vec::new();
            while let Some(tasks) = plan(state, std::mem::take(&mut results)) {
                results = tasks.iter().map(|t| work(&*state, t)).collect();
            }
            return;
        }
        use std::sync::{Barrier, RwLock};
        struct Round<T, U> {
            tasks: Vec<T>,
            slots: Vec<Mutex<Option<U>>>,
            next: AtomicUsize,
            done: bool,
        }
        let workers = self.threads;
        let state_lock: RwLock<&mut S> = RwLock::new(state);
        let round: RwLock<Round<T, U>> = RwLock::new(Round {
            tasks: Vec::new(),
            slots: Vec::new(),
            next: AtomicUsize::new(0),
            done: false,
        });
        let start = Barrier::new(workers + 1);
        let end = Barrier::new(workers + 1);
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    start.wait();
                    {
                        let r = sync::read(&round);
                        if r.done {
                            break;
                        }
                        let guard = sync::read(&state_lock);
                        let s: &S = &guard;
                        loop {
                            let i = r.next.fetch_add(1, Ordering::Relaxed);
                            if i >= r.tasks.len() {
                                break;
                            }
                            // Panics are parked, not unwound through the
                            // barrier protocol — a worker unwinding past
                            // `end.wait()` would deadlock everyone else.
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                work(s, &r.tasks[i])
                            })) {
                                Ok(u) => {
                                    *sync::lock(&r.slots[i]) = Some(u);
                                }
                                Err(payload) => {
                                    sync::lock(&panicked).get_or_insert(payload);
                                }
                            }
                        }
                    }
                    end.wait();
                });
            }
            let mut results: Vec<U> = Vec::new();
            loop {
                let next_tasks = {
                    let mut guard = sync::write(&state_lock);
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        plan(*guard, std::mem::take(&mut results))
                    })) {
                        Ok(t) => t,
                        Err(payload) => {
                            sync::lock(&panicked).get_or_insert(payload);
                            None
                        }
                    }
                };
                match next_tasks {
                    Some(tasks) if !tasks.is_empty() => {
                        {
                            let mut r = sync::write(&round);
                            r.slots = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
                            r.tasks = tasks;
                            r.next = AtomicUsize::new(0);
                        }
                        start.wait();
                        end.wait();
                        if sync::lock(&panicked).is_some() {
                            let mut r = sync::write(&round);
                            r.done = true;
                            drop(r);
                            start.wait();
                            break;
                        }
                        let mut r = sync::write(&round);
                        results = r
                            .slots
                            .drain(..)
                            // hep-lint: allow(HL007) -- both barriers passed with no parked panic, so every round slot was filled before the drain
                            .map(|s| sync::into_inner(s).expect("task ran"))
                            .collect();
                    }
                    Some(_) => {
                        // An empty round needs no workers; loop straight
                        // back into plan with empty results.
                        results = Vec::new();
                    }
                    None => {
                        let mut r = sync::write(&round);
                        r.done = true;
                        drop(r);
                        start.wait();
                        break;
                    }
                }
            }
        });
        if let Some(payload) = sync::into_inner(panicked) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Splits `len` items into contiguous `(start, end)` ranges of at most
/// `chunk` items. The decomposition depends only on `len` and `chunk` —
/// callers pass a constant `chunk`, which is what pins the workspace's
/// parallel results across thread counts.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut ranges = Vec::with_capacity(len.div_ceil(chunk));
    let mut at = 0;
    while at < len {
        let end = (at + chunk).min(len);
        ranges.push((at, end));
        at = end;
    }
    ranges
}

/// Maps fixed-size chunks of `slice` in parallel on the current pool,
/// returning one result per chunk in chunk order. `f` receives the chunk
/// index and the sub-slice.
pub fn par_chunks<T, U, F>(slice: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    let ranges = chunk_ranges(slice.len(), chunk);
    Pool::current().par_map(ranges.len(), |i| {
        let (a, b) = ranges[i];
        f(i, &slice[a..b])
    })
}

/// Fills fixed-size chunks of `out` in parallel on the current pool: each
/// task gets the chunk index and **exclusive** access to its sub-slice, so
/// hot loops can write results in place instead of allocating per-chunk
/// buffers and concatenating. The chunk decomposition is the same as
/// [`par_chunks`] with the same `chunk`.
pub fn par_chunks_mut<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let ranges = chunk_ranges(out.len(), chunk);
    let mut rest = out;
    let mut slices: Vec<Mutex<&mut [T]>> = Vec::with_capacity(ranges.len());
    for (a, b) in &ranges {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(b - a);
        slices.push(Mutex::new(head));
        rest = tail;
    }
    Pool::current().par_for_each(slices.len(), |i| {
        let mut slice = sync::lock(&slices[i]);
        f(i, &mut slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        for t in [1usize, 2, 8] {
            let pool = Pool::new(t);
            let out = pool.par_map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_reduce_folds_in_task_order() {
        // String concatenation is order-sensitive; the reduce must follow
        // task order at every thread count.
        let expect: String = (0..50).map(|i| format!("{i},")).collect();
        for t in [1usize, 3, 8] {
            let got = Pool::new(t).par_reduce(
                50,
                |i| format!("{i},"),
                String::new(),
                |mut acc, s: String| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn par_for_each_runs_every_task_once() {
        let hits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        Pool::new(8).par_for_each(200, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_each_init_state_count_bounded_by_threads() {
        let states = Pool::new(3).par_for_each_init(64, || 0u64, |s, _| *s += 1);
        assert!(states.len() <= 3);
        assert_eq!(states.iter().sum::<u64>(), 64);
        // Serial path: one state does all the work.
        let states = Pool::new(1).par_for_each_init(64, || 0u64, |s, _| *s += 1);
        assert_eq!(states, vec![64]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 10), vec![]);
        assert_eq!(chunk_ranges(10, 10), vec![(0, 10)]);
        assert_eq!(chunk_ranges(25, 10), vec![(0, 10), (10, 20), (20, 25)]);
        for len in [1usize, 63, 64, 65, 1000] {
            let r = chunk_ranges(len, 64);
            assert_eq!(r.first().unwrap().0, 0);
            assert_eq!(r.last().unwrap().1, len);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn par_chunks_sums_match_serial() {
        let data: Vec<u64> = (0..10_000).collect();
        let partials = par_chunks(&data, 1024, |_, c| c.iter().sum::<u64>());
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
        assert_eq!(partials.len(), 10);
    }

    #[test]
    fn set_threads_overrides_and_resets() {
        set_threads(5);
        assert_eq!(threads(), 5);
        assert_eq!(Pool::current().threads(), 5);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_pins_and_restores() {
        let width = with_threads(3, threads);
        assert_eq!(width, 3);
        let r = std::panic::catch_unwind(|| with_threads(7, || -> usize { panic!("inner") }));
        assert!(r.is_err());
        // Neither the lock nor the override is wedged after the panic: a
        // subsequent pinned run still sees exactly its requested width.
        assert_eq!(with_threads(4, threads), 4);
    }

    #[test]
    fn par_chunks_mut_fills_every_slot_in_place() {
        let mut out = vec![0u64; 10_000];
        par_chunks_mut(&mut out, 1024, |i, slice| {
            for (off, x) in slice.iter_mut().enumerate() {
                *x = (i * 1024 + off) as u64;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64));
        // Empty output is a no-op.
        par_chunks_mut(&mut [] as &mut [u64], 16, |_, _| unreachable!());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        Pool::new(4).par_for_each(16, |i| {
            if i == 7 {
                panic!("worker boom");
            }
        });
    }

    #[test]
    fn pool_zero_means_available() {
        assert!(Pool::new(0).threads() >= 1);
    }
}
