//! The three workloads of §5.3: PageRank (all vertices active every
//! iteration — communication-bound), BFS (frontier-driven), and Connected
//! Components (activity decays over time).
//!
//! Per-superstep compute runs concurrently on the `hep-par` pool — the BSP
//! barrier between supersteps is the only synchronization point, exactly as
//! on the simulated cluster. Every parallel step is structured to be
//! bit-identical at any thread count:
//!
//! * PageRank *pulls* rank from neighbors (each task owns a fixed output
//!   range and sums in CSR order) instead of pushing (which would race);
//!   the dangling-mass reduction folds fixed chunks in chunk order, so the
//!   floating-point summation tree never depends on the worker count.
//! * BFS workers read a frozen distance array and propose candidates; a
//!   serial commit in chunk order deduplicates the next frontier.
//! * Connected components relaxes labels with an atomic `fetch_min` —
//!   order-insensitive, so racing workers cannot change the outcome.

use crate::cluster::{ClusterCost, DistributedGraph};
use hep_graph::VertexId;
use std::sync::atomic::{AtomicU32, Ordering};

/// Active vertices per parallel task (constant: the chunk decomposition
/// pins the results across thread counts).
const CHUNK: usize = 4096;

/// Accumulated cost of a simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunCost {
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Total synchronization messages.
    pub total_msgs: u64,
    /// Simulated wall-clock seconds under the [`ClusterCost`] model.
    pub sim_seconds: f64,
}

impl RunCost {
    fn charge(&mut self, dg: &DistributedGraph, cost: &ClusterCost, active: &[VertexId]) {
        let (compute, traffic, msgs) = dg.superstep_cost(active);
        self.supersteps += 1;
        self.total_msgs += msgs;
        self.sim_seconds +=
            compute as f64 * cost.edge_cost + traffic as f64 * cost.msg_cost + cost.barrier;
    }

    fn merge(&mut self, other: RunCost) {
        self.supersteps += other.supersteps;
        self.total_msgs += other.total_msgs;
        self.sim_seconds += other.sim_seconds;
    }
}

/// PageRank with damping 0.85 for a fixed number of iterations (the paper
/// runs 100). Every vertex is active in every superstep. Returns the exact
/// rank vector and the simulated cost.
pub fn pagerank(dg: &DistributedGraph, iterations: u32, cost: &ClusterCost) -> (Vec<f64>, RunCost) {
    let n = dg.num_vertices() as usize;
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let all: Vec<VertexId> = (0..n as u32).collect();
    let ranges = hep_par::chunk_ranges(n, CHUNK);
    let pool = hep_par::Pool::current();
    let mut run = RunCost::default();
    for _ in 0..iterations {
        run.charge(dg, cost, &all);
        // Dangling (degree-0) vertices spread their mass uniformly so the
        // ranks stay a probability distribution. Partial sums fold in chunk
        // order: a fixed summation tree.
        let rank_ref = &rank;
        let dangling = pool.par_reduce(
            ranges.len(),
            |i| {
                let (a, b) = ranges[i];
                debug_assert!(a <= b && b <= rank_ref.len(), "chunk ranges partition 0..n");
                let mut s = 0.0f64;
                for (v, &r) in (a..b).zip(rank_ref[a..b].iter()) {
                    if dg.csr.degree(v as u32) == 0 {
                        s += r;
                    }
                }
                s
            },
            0.0f64,
            // hep-lint: allow(HL013) -- par_reduce folds the per-chunk sums in task order on the calling thread: a fixed summation tree at any thread count
            |acc, s| acc + s,
        );
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        // Pull phase: each task owns an output range of the double buffer
        // and gathers from its vertices' neighbors in CSR order — no write
        // races, no per-iteration allocation, and the same per-vertex
        // accumulation order as a serial pull.
        hep_par::par_chunks_mut(&mut next, CHUNK, |i, slice| {
            let (a, _) = ranges[i];
            for (off, x) in slice.iter_mut().enumerate() {
                let u = (a + off) as u32;
                let mut acc = base;
                for &v in dg.csr.neighbors(u) {
                    acc += damping * rank_ref[v as usize] / dg.csr.degree(v) as f64;
                }
                *x = acc;
            }
        });
        std::mem::swap(&mut rank, &mut next);
    }
    (rank, run)
}

/// BFS from one seed. Active set per superstep is the frontier. Returns
/// hop distances (`u32::MAX` when unreachable) and the simulated cost.
pub fn bfs_single(
    dg: &DistributedGraph,
    seed: VertexId,
    cost: &ClusterCost,
) -> (Vec<u32>, RunCost) {
    let n = dg.num_vertices() as usize;
    debug_assert!(seed < dg.num_vertices(), "seed vertex out of range");
    let mut dist = vec![u32::MAX; n];
    dist[seed as usize] = 0;
    let mut frontier = vec![seed];
    let mut run = RunCost::default();
    let mut depth = 0u32;
    while !frontier.is_empty() {
        run.charge(dg, cost, &frontier);
        depth += 1;
        // Workers scan a frozen distance array and propose candidates; the
        // serial commit below deduplicates in chunk order, so the frontier
        // (and its order) is the same at any thread count.
        let dist_ref = &dist;
        let candidates = hep_par::par_chunks(&frontier, CHUNK, |_, chunk| {
            let mut found = Vec::new();
            for &v in chunk {
                for &u in dg.csr.neighbors(v) {
                    if dist_ref[u as usize] == u32::MAX {
                        found.push(u);
                    }
                }
            }
            found
        });
        let mut next = Vec::new();
        for c in candidates {
            for u in c {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    (dist, run)
}

/// The paper's BFS workload: sequential runs from `seeds.len()` different
/// seed vertices; costs accumulate.
pub fn bfs(dg: &DistributedGraph, seeds: &[VertexId], cost: &ClusterCost) -> RunCost {
    let mut total = RunCost::default();
    for &s in seeds {
        let (_, c) = bfs_single(dg, s, cost);
        total.merge(c);
    }
    total
}

/// Connected components by min-label propagation; a vertex is active in the
/// superstep after its label changed. Returns the exact component labels and
/// the simulated cost.
pub fn connected_components(dg: &DistributedGraph, cost: &ClusterCost) -> (Vec<u32>, RunCost) {
    let n = dg.num_vertices() as usize;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut active: Vec<VertexId> = (0..n as u32).collect();
    let mut run = RunCost::default();
    while !active.is_empty() {
        run.charge(dg, cost, &active);
        // Min-label relaxation with atomic fetch_min: the minimum is
        // order-insensitive, so concurrent workers cannot change the result.
        let relaxed: Vec<AtomicU32> = label.iter().map(|&l| AtomicU32::new(l)).collect();
        let label_ref = &label;
        let relaxed_ref = &relaxed;
        hep_par::par_chunks(&active, CHUNK, |_, chunk| {
            for &v in chunk {
                let lv = label_ref[v as usize];
                for &u in dg.csr.neighbors(v) {
                    relaxed_ref[u as usize].fetch_min(lv, Ordering::Relaxed);
                }
            }
        });
        let new_label: Vec<u32> = relaxed.into_iter().map(AtomicU32::into_inner).collect();
        // Changed set: fixed vertex ranges concatenated in order.
        let new_ref = &new_label;
        let changed_chunks = hep_par::par_chunks(&label, CHUNK, |i, chunk| {
            let base = i * CHUNK;
            let mut changed = Vec::new();
            for (off, &old) in chunk.iter().enumerate() {
                if new_ref[base + off] != old {
                    changed.push((base + off) as u32);
                }
            }
            changed
        });
        label = new_label;
        active = changed_chunks.into_iter().flatten().collect();
    }
    (label, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_graph::partitioner::CollectedAssignment;
    use hep_graph::{EdgeList, EdgePartitioner};

    fn load(graph: &EdgeList, k: u32) -> DistributedGraph {
        let mut sink = CollectedAssignment::default();
        hep_baselines::Hdrf::default().partition(graph, k, &mut sink).unwrap();
        DistributedGraph::load(graph, &sink, k)
    }

    /// Sequential reference PageRank on the raw edge list.
    fn reference_pagerank(graph: &EdgeList, iterations: u32) -> Vec<f64> {
        let n = graph.num_vertices as usize;
        let deg = graph.degrees();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iterations {
            let dangling: f64 =
                rank.iter().zip(deg.iter()).filter(|(_, &d)| d == 0).map(|(r, _)| r).sum();
            let base = 0.15 / n as f64 + 0.85 * dangling / n as f64;
            let mut next = vec![base; n];
            for e in &graph.edges {
                next[e.dst as usize] += 0.85 * rank[e.src as usize] / deg[e.src as usize] as f64;
                next[e.src as usize] += 0.85 * rank[e.dst as usize] / deg[e.dst as usize] as f64;
            }
            rank = next;
        }
        rank
    }

    #[test]
    fn pagerank_is_a_probability_distribution() {
        // Includes isolated vertices, whose mass must be redistributed.
        let g = EdgeList::with_vertices(60, [(0u32, 1u32), (1, 2), (2, 0)]).unwrap();
        let mut sink = CollectedAssignment::default();
        hep_baselines::Hdrf::default().partition(&g, 2, &mut sink).unwrap();
        let dg = DistributedGraph::load(&g, &sink, 2);
        let (ranks, _) = pagerank(&dg, 30, &ClusterCost::default());
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "ranks sum to {sum}");
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = hep_gen::GraphSpec::ChungLu { n: 200, m: 1500, gamma: 2.2 }.generate(1);
        let dg = load(&g, 4);
        let (ranks, cost) = pagerank(&dg, 20, &ClusterCost::default());
        let reference = reference_pagerank(&g, 20);
        for (a, b) in ranks.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(cost.supersteps, 20);
        assert!(cost.sim_seconds > 0.0);
    }

    #[test]
    fn pagerank_results_independent_of_partitioning() {
        let g = hep_gen::GraphSpec::ChungLu { n: 200, m: 1500, gamma: 2.2 }.generate(2);
        let a = load(&g, 4);
        let mut sink = CollectedAssignment::default();
        hep_baselines::Dbh::default().partition(&g, 8, &mut sink).unwrap();
        let b = DistributedGraph::load(&g, &sink, 8);
        let (ra, _) = pagerank(&a, 10, &ClusterCost::default());
        let (rb, _) = pagerank(&b, 10, &ClusterCost::default());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bfs_distances_match_reference() {
        let g = hep_gen::spec::GraphSpec::Grid2d { rows: 8, cols: 8 }.generate(0);
        let dg = load(&g, 4);
        let (dist, cost) = bfs_single(&dg, 0, &ClusterCost::default());
        // Manhattan distance on the grid.
        for r in 0..8u32 {
            for c in 0..8u32 {
                assert_eq!(dist[(r * 8 + c) as usize], r + c);
            }
        }
        assert_eq!(cost.supersteps as u32, 15); // 14 frontiers + last scan... depth 0..14
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = hep_gen::spec::GraphSpec::DisconnectedCliques { count: 2, size: 3 }.generate(0);
        let dg = load(&g, 2);
        let (dist, _) = bfs_single(&dg, 0, &ClusterCost::default());
        assert_eq!(dist[1], 1);
        assert_eq!(dist[3], u32::MAX);
    }

    #[test]
    fn cc_labels_match_components() {
        let g = hep_gen::spec::GraphSpec::DisconnectedCliques { count: 5, size: 4 }.generate(0);
        let dg = load(&g, 4);
        let (labels, cost) = connected_components(&dg, &ClusterCost::default());
        for v in 0..20u32 {
            assert_eq!(labels[v as usize], (v / 4) * 4, "vertex {v}");
        }
        assert!(cost.supersteps >= 2);
    }

    #[test]
    fn higher_replication_costs_more_messages() {
        // The same graph partitioned well (HEP) vs poorly (random) must show
        // strictly more sync messages for the poor partitioning.
        let g = hep_gen::community::community_web(
            hep_gen::community::CommunityParams::weblike(2000, 15_000),
            3,
        );
        let k = 8;
        let mut good_sink = CollectedAssignment::default();
        hep_core::Hep::with_tau(10.0).partition(&g, k, &mut good_sink).unwrap();
        let good = DistributedGraph::load(&g, &good_sink, k);
        let mut bad_sink = CollectedAssignment::default();
        hep_baselines::RandomStreaming::default().partition(&g, k, &mut bad_sink).unwrap();
        let bad = DistributedGraph::load(&g, &bad_sink, k);
        assert!(good.replication_factor() < bad.replication_factor());
        let cost = ClusterCost::default();
        let (_, good_cost) = pagerank(&good, 5, &cost);
        let (_, bad_cost) = pagerank(&bad, 5, &cost);
        assert!(
            good_cost.total_msgs < bad_cost.total_msgs,
            "good {} vs bad {}",
            good_cost.total_msgs,
            bad_cost.total_msgs
        );
        assert!(good_cost.sim_seconds < bad_cost.sim_seconds);
    }

    #[test]
    fn multi_seed_bfs_accumulates() {
        let g = hep_gen::GraphSpec::ChungLu { n: 300, m: 2000, gamma: 2.2 }.generate(5);
        let dg = load(&g, 4);
        let cost = ClusterCost::default();
        let single = bfs(&dg, &[0], &cost);
        let triple = bfs(&dg, &[0, 1, 2], &cost);
        assert!(triple.sim_seconds > single.sim_seconds);
        assert!(triple.supersteps > single.supersteps);
    }
}
