//! The partitioned-graph view of the simulated cluster and its cost model.

use hep_graph::partitioner::CollectedAssignment;
use hep_graph::{Csr, EdgeList, PartitionId, VertexId};

/// Time constants of the simulated cluster. Defaults are calibrated so that
/// the OK-analog PageRank lands in the same order of magnitude as Table 4's
/// seconds; only *relative* comparisons between partitioners matter.
#[derive(Clone, Copy, Debug)]
pub struct ClusterCost {
    /// Seconds per active local edge (compute).
    pub edge_cost: f64,
    /// Seconds per synchronization message.
    pub msg_cost: f64,
    /// Barrier/scheduling latency per superstep, seconds.
    pub barrier: f64,
}

impl Default for ClusterCost {
    fn default() -> Self {
        ClusterCost { edge_cost: 25e-9, msg_cost: 600e-9, barrier: 30e-3 }
    }
}

/// A graph placed on `k` simulated machines by an edge partitioner.
pub struct DistributedGraph {
    /// Exact global adjacency (algorithm semantics).
    pub csr: Csr,
    k: u32,
    /// `replicas[v]`: per machine holding `v`, `(machine, local_degree)`;
    /// the first entry acts as the master replica.
    replicas: Vec<Vec<(PartitionId, u32)>>,
    /// Edges per machine.
    pub machine_edges: Vec<u64>,
}

impl DistributedGraph {
    /// Loads a finished partitioning onto the simulated cluster.
    pub fn load(graph: &EdgeList, assignment: &CollectedAssignment, k: u32) -> Self {
        let csr = Csr::build(graph);
        let mut replicas: Vec<Vec<(PartitionId, u32)>> =
            vec![Vec::new(); graph.num_vertices as usize];
        let mut machine_edges = vec![0u64; k as usize];
        let bump = |v: VertexId, p: PartitionId, replicas: &mut Vec<Vec<(u32, u32)>>| {
            let list = &mut replicas[v as usize];
            match list.iter_mut().find(|(m, _)| *m == p) {
                Some((_, d)) => *d += 1,
                None => list.push((p, 1)),
            }
        };
        for &(e, p) in &assignment.assignments {
            machine_edges[p as usize] += 1;
            bump(e.src, p, &mut replicas);
            bump(e.dst, p, &mut replicas);
        }
        DistributedGraph { csr, k, replicas, machine_edges }
    }

    /// Number of machines (= partitions).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Replica count of `v` (0 for isolated vertices).
    pub fn replica_count(&self, v: VertexId) -> u32 {
        debug_assert!((v as usize) < self.replicas.len(), "vertex id {v} out of range");
        self.replicas[v as usize].len() as u32
    }

    /// Replication factor over covered vertices (sanity checks).
    pub fn replication_factor(&self) -> f64 {
        let covered = self.replicas.iter().filter(|r| !r.is_empty()).count();
        if covered == 0 {
            return 0.0;
        }
        self.replicas.iter().map(|r| r.len() as u64).sum::<u64>() as f64 / covered as f64
    }

    /// Covered-vertex count per machine `|V(p_i)|` (Table 5).
    pub fn covered_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.k as usize];
        for r in &self.replicas {
            for &(m, _) in r {
                counts[m as usize] += 1;
            }
        }
        counts
    }

    /// Charges one superstep in which exactly `active` vertices compute and
    /// synchronize. Returns `(max_compute, max_traffic, total_msgs)` where
    /// compute counts active local edges per machine and traffic counts
    /// per-machine sent+received messages.
    ///
    /// The per-machine tallies run concurrently on the `hep-par` pool over
    /// fixed chunks of the active set (the BSP barrier is the natural sync
    /// point); the per-chunk integer tallies sum to the same totals at any
    /// thread count.
    pub fn superstep_cost(&self, active: &[VertexId]) -> (u64, u64, u64) {
        const CHUNK: usize = 8192;
        let k = self.k as usize;
        let parts = hep_par::par_chunks(active, CHUNK, |_, chunk| {
            let mut compute = vec![0u64; k];
            let mut traffic = vec![0u64; k];
            let mut msgs = 0u64;
            for &v in chunk {
                let reps = &self.replicas[v as usize];
                if reps.is_empty() {
                    continue;
                }
                let r = reps.len() as u64;
                msgs += 2 * (r - 1);
                let master = reps[0].0;
                // Master exchanges (r-1) partials in and (r-1) updates out.
                traffic[master as usize] += 2 * (r - 1);
                for (i, &(m, local_deg)) in reps.iter().enumerate() {
                    compute[m as usize] += local_deg as u64;
                    if i > 0 {
                        traffic[m as usize] += 2; // one partial out, one update in
                    }
                }
            }
            (compute, traffic, msgs)
        });
        let mut compute = vec![0u64; k];
        let mut traffic = vec![0u64; k];
        let mut total_msgs = 0u64;
        for (c, t, m) in parts {
            for (acc, x) in compute.iter_mut().zip(c) {
                *acc += x;
            }
            for (acc, x) in traffic.iter_mut().zip(t) {
                *acc += x;
            }
            total_msgs += m;
        }
        (
            compute.iter().copied().max().unwrap_or(0),
            traffic.iter().copied().max().unwrap_or(0),
            total_msgs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_graph::AssignSink;

    fn star_two_parts() -> (EdgeList, CollectedAssignment) {
        // Figure 1: hub 0 replicated on both machines.
        let g = EdgeList::from_pairs([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]);
        let mut a = CollectedAssignment::default();
        for v in [1, 2, 3] {
            a.assign(0, v, 0);
        }
        for v in [4, 5, 6] {
            a.assign(0, v, 1);
        }
        (g, a)
    }

    #[test]
    fn load_builds_replicas_and_local_degrees() {
        let (g, a) = star_two_parts();
        let dg = DistributedGraph::load(&g, &a, 2);
        assert_eq!(dg.replica_count(0), 2);
        assert_eq!(dg.replica_count(1), 1);
        assert!((dg.replication_factor() - 8.0 / 7.0).abs() < 1e-12);
        assert_eq!(dg.machine_edges, vec![3, 3]);
        assert_eq!(dg.covered_counts(), vec![4, 4]);
    }

    #[test]
    fn superstep_cost_charges_replica_sync() {
        let (g, a) = star_two_parts();
        let dg = DistributedGraph::load(&g, &a, 2);
        // Only the hub active: r=2 -> 2 messages; compute = max local degree
        // of the hub (3 on each machine).
        let (compute, traffic, msgs) = dg.superstep_cost(&[0u32]);
        assert_eq!(msgs, 2);
        assert_eq!(compute, 3);
        assert!(traffic >= 2);
        // A leaf has one replica: no messages.
        let (_, _, msgs) = dg.superstep_cost(&[1u32]);
        assert_eq!(msgs, 0);
    }

    #[test]
    fn isolated_vertices_cost_nothing() {
        let g = EdgeList::with_vertices(5, [(0, 1)]).unwrap();
        let mut a = CollectedAssignment::default();
        a.assign(0, 1, 0);
        let dg = DistributedGraph::load(&g, &a, 2);
        let (c, t, m) = dg.superstep_cost(&[4u32]);
        assert_eq!((c, t, m), (0, 0, 0));
    }
}
