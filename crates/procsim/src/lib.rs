//! A deterministic simulator of distributed graph processing over an edge
//! partitioning — the reproduction's substitute for the paper's 32-machine
//! Spark/GraphX cluster (§5.3, Tables 4 and 5). See DESIGN.md §2 for the
//! substitution argument.
//!
//! The model is bulk-synchronous GAS over a vertex cut (PowerGraph/GraphX
//! semantics): each partition lives on one machine; a vertex with replicas
//! on `r` machines costs `2·(r − 1)` synchronization messages per superstep
//! in which it is active (gather partials to the master, scatter the new
//! state to mirrors). Per superstep, the simulated wall-clock charges the
//! *maximum* per-machine compute (active local edges) and traffic, plus a
//! barrier latency:
//!
//! ```text
//! t_step = max_m(compute_m)·EDGE_COST + max_m(traffic_m)·MSG_COST + BARRIER
//! ```
//!
//! Algorithm *results* (ranks, distances, labels) are computed exactly and
//! verified against single-machine references in tests, so communication
//! volumes are exact; only the three time constants are a model.

pub mod algorithms;
pub mod cluster;

pub use algorithms::{bfs, bfs_single, connected_components, pagerank, RunCost};
pub use cluster::{ClusterCost, DistributedGraph};
