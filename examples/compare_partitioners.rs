//! Survey of every partitioner in the workspace on one graph: quality,
//! balance, and run-time side by side — a compact, runnable version of the
//! paper's Figure 8 for your own data.
//!
//! Run with: `cargo run --release --example compare_partitioners [dataset] [k]`
//! where dataset is one of LJ OK BR WI IT TW FR UK GSH WDC (default OK).

use hep::graph::EdgePartitioner;
use hep::metrics::table::format_secs;
use hep::metrics::{PartitionMetrics, Table};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "OK".into());
    let k: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let graph = hep::gen::dataset(&name, 1)
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name}; try LJ OK BR WI IT TW FR UK GSH WDC");
            std::process::exit(1);
        })
        .generate();
    println!("{name} analog: |V| = {}, |E| = {}; k = {k}\n", graph.num_vertices, graph.num_edges());

    let mut partitioners: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(hep::core::Hep::with_tau(100.0)),
        Box::new(hep::core::Hep::with_tau(10.0)),
        Box::new(hep::core::Hep::with_tau(1.0)),
        Box::new(hep::core::SimpleHybrid::with_tau(1.0)),
        Box::new(hep::baselines::Ne::default()),
        Box::new(hep::baselines::Sne::default()),
        Box::new(hep::baselines::Dne::default()),
        Box::new(hep::baselines::MetisLike::default()),
        Box::new(hep::baselines::Hdrf::default()),
        Box::new(hep::baselines::Greedy::default()),
        Box::new(hep::baselines::Adwise::default()),
        Box::new(hep::baselines::Dbh::default()),
        Box::new(hep::baselines::Grid::default()),
        Box::new(hep::baselines::RandomStreaming::default()),
    ];

    let mut table = Table::new(["partitioner", "RF", "alpha", "vertex bal.", "time"]);
    for p in partitioners.iter_mut() {
        let mut metrics = PartitionMetrics::new(k, graph.num_vertices);
        let start = std::time::Instant::now();
        p.partition(&graph, k, &mut metrics).expect("partitioning succeeds");
        let secs = start.elapsed().as_secs_f64();
        table.row([
            p.name(),
            format!("{:.2}", metrics.replication_factor()),
            format!("{:.3}", metrics.balance_factor()),
            format!("{:.3}", metrics.vertex_balance()),
            format_secs(secs),
        ]);
    }
    println!("{}", table.render());
}
