//! The paper's motivating scenario (§1, §5.3): the partitioner you choose
//! determines how fast a distributed PageRank runs. This example partitions
//! a web graph with four algorithms and compares simulated processing times
//! on a 32-machine GAS cluster.
//!
//! Run with: `cargo run --release --example distributed_pagerank`

use hep::graph::partitioner::CollectedAssignment;
use hep::graph::EdgePartitioner;
use hep::metrics::table::format_secs;
use hep::metrics::Table;
use hep::procsim::{pagerank, ClusterCost, DistributedGraph};

fn main() {
    let graph = hep::gen::dataset("IT", 1).expect("IT exists").generate();
    let k = 32;
    println!(
        "IT analog (web): |V| = {}, |E| = {}; k = {k}; PageRank x100 iterations\n",
        graph.num_vertices,
        graph.num_edges()
    );

    let mut partitioners: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(hep::core::Hep::with_tau(10.0)),
        Box::new(hep::baselines::Ne::default()),
        Box::new(hep::baselines::Hdrf::default()),
        Box::new(hep::baselines::Dbh::default()),
    ];

    let cost = ClusterCost::default();
    let mut table = Table::new(["partitioner", "part. time", "RF", "sim. PageRank", "total"]);
    for p in partitioners.iter_mut() {
        let mut collected = CollectedAssignment::default();
        let start = std::time::Instant::now();
        p.partition(&graph, k, &mut collected).expect("partitioning succeeds");
        let part_time = start.elapsed().as_secs_f64();
        let dg = DistributedGraph::load(&graph, &collected, k);
        let (ranks, run) = pagerank(&dg, 100, &cost);
        // Sanity: ranks are a probability distribution.
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
        table.row([
            p.name(),
            format_secs(part_time),
            format!("{:.2}", dg.replication_factor()),
            format_secs(run.sim_seconds),
            format_secs(part_time + run.sim_seconds),
        ]);
    }
    println!("{}", table.render());
    println!("Lower replication factor -> fewer replica syncs -> faster iterations.");
}
