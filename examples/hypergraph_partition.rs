//! The paper's §7 future-work direction, runnable: hybrid in-memory +
//! streaming partitioning of a power-law *hypergraph*, compared against pure
//! streaming min-max.
//!
//! Run with: `cargo run --release --example hypergraph_partition`

use hep::hyper::{power_law_hypergraph, HybridHyper, StreamingMinMax};
use hep::metrics::Table;

fn main() {
    let h = power_law_hypergraph(10_000, 60_000, 12, 42);
    let k = 16;
    println!(
        "hypergraph: |V| = {}, |He| = {}, mean vertex degree {:.1}\n",
        h.num_vertices,
        h.num_hyperedges(),
        h.mean_degree()
    );

    let mut table = Table::new(["partitioner", "RF", "balance"]);
    for tau in [100.0, 10.0, 1.0] {
        let (_, m) = HybridHyper::with_tau(tau).partition(&h, k).expect("hybrid runs");
        table.row([
            format!("HybridHyper-{tau}"),
            format!("{:.2}", m.replication_factor()),
            format!("{:.3}", m.balance_factor()),
        ]);
    }
    let (_, m) = StreamingMinMax::default().partition(&h, k).expect("min-max runs");
    table.row([
        "StreamingMinMax".to_string(),
        format!("{:.2}", m.replication_factor()),
        format!("{:.3}", m.balance_factor()),
    ]);
    println!("{}", table.render());
    println!("The hybrid paradigm carries over: expansion quality with a streaming");
    println!("escape hatch for the dense high-degree core.");
}
