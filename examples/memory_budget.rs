//! Partitioning under a memory budget — the paper's headline capability
//! (§4.4): pick the largest τ whose predicted footprint fits the machine,
//! then partition with it.
//!
//! Run with: `cargo run --release --example memory_budget [budget_bytes]`

use hep::core::{plan_tau, Hep};
use hep::metrics::table::format_bytes;
use hep::metrics::PartitionMetrics;

fn main() {
    let graph = hep::gen::dataset("TW", 1).expect("TW exists").generate();
    let k = 32;
    println!("TW analog: |V| = {}, |E| = {}", graph.num_vertices, graph.num_edges());

    // Show the whole budget curve first.
    let grid = [100.0, 30.0, 10.0, 3.0, 1.0, 0.3];
    println!("\npredicted footprint per tau (paper §4.2 accounting, k = {k}):");
    for &tau in &grid {
        let bytes = hep::core::estimate_footprint_bytes(&graph, tau, k);
        println!("  tau = {tau:>5}: {}", format_bytes(bytes));
    }

    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| hep::core::estimate_footprint_bytes(&graph, 10.0, k));
    println!("\nmemory budget: {}", format_bytes(budget));

    match plan_tau(&graph, k, budget, &grid).expect("grid is valid") {
        Some(plan) => {
            println!(
                "planner chose tau = {} (predicted {})",
                plan.tau,
                format_bytes(plan.estimated_bytes)
            );
            let mut metrics = PartitionMetrics::new(k, graph.num_vertices);
            let report = Hep::with_tau(plan.tau)
                .partition_with_report(&graph, k, &mut metrics)
                .expect("partitioning succeeds");
            println!(
                "result: RF {:.2}, streamed {} of {} edges, built footprint {}",
                metrics.replication_factor(),
                report.h2h_edges,
                graph.num_edges(),
                format_bytes(report.footprint_paper_bytes)
            );
            assert!(report.footprint_paper_bytes <= budget, "plan must hold");
        }
        None => println!("even the smallest tau exceeds the budget; use pure streaming (HDRF)"),
    }
}
