//! Partition a graph from an edge-list file — the workflow of a user
//! pre-partitioning a dataset for a distributed graph engine.
//!
//! Usage:
//!   cargo run --release --example partition_edgelist -- <edges.txt|edges.bin> <k> [tau]
//!
//! The input may be a text edge list ("src dst" per line, `#` comments) or a
//! binary one (little-endian u32 pairs); the output is written next to the
//! input as `<input>.parts`, one line per edge: `src dst partition`.
//!
//! Without arguments, the example writes a demo graph to a temp file first
//! so it stays runnable out of the box.

use hep::core::Hep;
use hep::graph::partitioner::CollectedAssignment;
use hep::graph::{EdgeList, EdgePartitioner};
use hep::metrics::PartitionMetrics;
use std::io::Write;
use std::path::PathBuf;

fn demo_input() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push("hep_example_graph.txt");
    let g = hep::gen::dataset("LJ", 1).expect("LJ exists").generate();
    g.write_text(&p).expect("demo graph written");
    println!("(no input given: wrote a demo graph to {})", p.display());
    p
}

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args.next().map(PathBuf::from).unwrap_or_else(demo_input);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let tau: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0);

    let mut graph = if input.extension().is_some_and(|e| e == "bin") {
        EdgeList::read_binary(&input)
    } else {
        EdgeList::read_text(&input)
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", input.display());
        std::process::exit(1);
    });
    graph.canonicalize();
    println!(
        "loaded {}: |V| = {}, |E| = {}",
        input.display(),
        graph.num_vertices,
        graph.num_edges()
    );

    let mut metrics = PartitionMetrics::new(k, graph.num_vertices);
    let mut collected = CollectedAssignment::default();
    let mut tee = hep::graph::partitioner::TeeSink { first: &mut metrics, second: &mut collected };
    let start = std::time::Instant::now();
    Hep::with_tau(tau).partition(&graph, k, &mut tee).unwrap_or_else(|e| {
        eprintln!("partitioning failed: {e}");
        std::process::exit(1);
    });
    println!(
        "HEP-{tau} with k = {k}: RF {:.2}, balance {:.3}, {:.2?}",
        metrics.replication_factor(),
        metrics.balance_factor(),
        start.elapsed()
    );

    let out_path = input.with_extension("parts");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&out_path).expect("create output"));
    for (e, p) in &collected.assignments {
        writeln!(out, "{} {} {}", e.src, e.dst, p).expect("write output");
    }
    out.flush().expect("flush output");
    println!("wrote {} assignments to {}", collected.assignments.len(), out_path.display());
}
