//! Quickstart: generate a power-law graph, partition it with HEP at three τ
//! settings, and print the quality/memory trade-off the system is built
//! around.
//!
//! Run with: `cargo run --release --example quickstart`

use hep::core::Hep;
use hep::metrics::table::format_bytes;
use hep::metrics::{PartitionMetrics, Table};

fn main() {
    // A social-network-like graph: 20k vertices, 150k edges, heavy hubs.
    let graph = hep::gen::GraphSpec::ChungLu { n: 20_000, m: 150_000, gamma: 2.1 }.generate(7);
    let k = 32;
    println!(
        "graph: |V| = {}, |E| = {}, mean degree {:.1}",
        graph.num_vertices,
        graph.num_edges(),
        graph.mean_degree()
    );

    let mut table = Table::new(["tau", "RF", "balance", "in-mem edges", "streamed", "est. memory"]);
    for tau in [100.0, 10.0, 1.0] {
        let hep = Hep::with_tau(tau);
        let mut metrics = PartitionMetrics::new(k, graph.num_vertices);
        let report =
            hep.partition_with_report(&graph, k, &mut metrics).expect("partitioning succeeds");
        table.row([
            format!("{tau}"),
            format!("{:.2}", metrics.replication_factor()),
            format!("{:.3}", metrics.balance_factor()),
            report.inmem_edges.to_string(),
            report.h2h_edges.to_string(),
            format_bytes(report.footprint_paper_bytes),
        ]);
    }
    println!("\n{}", table.render());
    println!("Lower tau => more edges streamed => less memory, slightly higher RF.");
}
