//! The parallel-NE++ trade-off, measured: sweep `HepConfig::split_factor`
//! and compare replication factor and phase timings against the serial
//! phase (`split_factor = 1`). Splitting the expansion into `k ·
//! split_factor` sub-partitions parallelizes HEP's in-memory phase at an
//! SNE-style replication cost; the output is bit-identical at any
//! `HEP_THREADS` value for a fixed split factor.
//!
//! Run with: `cargo run --release --example split_factor_sweep [dataset] [k]`
//! where dataset is one of LJ OK BR WI IT TW FR UK GSH WDC (default OK).

use hep::core::{Hep, HepConfig};
use hep::graph::partitioner::CollectedAssignment;
use hep::metrics::{PartitionMetrics, Table};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "OK".into());
    let k: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let graph = hep::gen::dataset(&name, 1)
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name}; try LJ OK BR WI IT TW FR UK GSH WDC");
            std::process::exit(1);
        })
        .generate();
    println!(
        "{name}: |V| = {}, |E| = {}, k = {k}, HEP_THREADS = {}",
        graph.num_vertices,
        graph.num_edges(),
        hep::par::threads()
    );
    let mut table =
        Table::new(["tau", "split", "RF", "build s", "nepp s", "cleanup/pack s", "stream s"]);
    for tau in [10.0, 1.0] {
        for split in [1u32, 2, 4, 8] {
            let mut config = HepConfig::with_tau(tau);
            config.split_factor = split;
            let hep = Hep { config };
            let mut sink = CollectedAssignment::default();
            let report = hep.partition_with_report(&graph, k, &mut sink).expect("partitioning");
            let rf = PartitionMetrics::from_assignment(k, graph.num_vertices, &sink)
                .replication_factor();
            let t = report.timings;
            table.row([
                format!("{tau}"),
                format!("{split}"),
                format!("{rf:.3}"),
                format!("{:.3}", t.build_secs),
                format!("{:.3}", t.nepp_secs),
                format!("{:.3}", t.cleanup_secs),
                format!("{:.3}", t.stream_secs),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(split = 1 is the exact serial NE++ of §3.2; higher splits parallelize the");
    println!(" expansion at an SNE-style replication cost — compare the RF column)");
}
