//! # hep — Hybrid Edge Partitioner
//!
//! A from-scratch Rust implementation of **"Hybrid Edge Partitioner:
//! Partitioning Large Power-Law Graphs under Memory Constraints"** (Mayer &
//! Jacobsen, SIGMOD 2021), together with the seven baseline partitioners the
//! paper evaluates against and the substrates needed to regenerate its
//! complete evaluation on one machine.
//!
//! ## Quick start
//!
//! ```
//! use hep::core::Hep;
//! use hep::graph::EdgePartitioner;
//! use hep::metrics::PartitionMetrics;
//!
//! // A small power-law-ish graph.
//! let graph = hep::gen::GraphSpec::ChungLu { n: 1000, m: 8000, gamma: 2.2 }.generate(42);
//!
//! // Partition into 8 parts with HEP at tau = 10.
//! let mut metrics = PartitionMetrics::new(8, graph.num_vertices);
//! Hep::with_tau(10.0).partition(&graph, 8, &mut metrics).unwrap();
//!
//! println!("replication factor: {:.2}", metrics.replication_factor());
//! assert!(metrics.replication_factor() >= 1.0);
//! assert!(metrics.balance_factor() <= 1.05 + 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | HEP itself: NE++, informed streaming, the τ planner, the simple-hybrid ablation |
//! | [`baselines`] | NE, SNE, HDRF, Greedy, ADWISE, DBH, Grid, DNE, METIS-like, random |
//! | [`graph`] | edge lists, degree statistics, CSR and the pruned CSR |
//! | [`gen`] | synthetic power-law generators and Table 3 dataset analogs |
//! | [`metrics`] | replication factor, balance, validity, allocation tracking |
//! | [`procsim`] | the simulated distributed processing cluster (§5.3) |
//! | [`pagesim`] | the LRU paging simulator (§5.5) |
//! | [`ds`] | bitsets, indexed min-heap, fast hashing |
//! | [`par`] | deterministic parallel primitives (`HEP_THREADS`, chunked seeding) |
//! | [`hyper`] | hybrid hyperedge partitioning (the paper's §7 future-work direction) |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use hep_baselines as baselines;
pub use hep_core as core;
pub use hep_ds as ds;
pub use hep_gen as gen;
pub use hep_graph as graph;
pub use hep_hyper as hyper;
pub use hep_metrics as metrics;
pub use hep_pagesim as pagesim;
pub use hep_par as par;
pub use hep_procsim as procsim;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use hep_baselines::{
        Adwise, Dbh, Dne, Greedy, Grid, Hdrf, MetisLike, Ne, RandomStreaming, Sne,
    };
    pub use hep_core::{Hep, HepConfig, SimpleHybrid};
    pub use hep_graph::{AssignSink, Edge, EdgeList, EdgePartitioner, GraphError};
    pub use hep_metrics::PartitionMetrics;
}
