//! Corruption battery for the HEPB edge-file format: every way a file can
//! be damaged — truncation at each section boundary, bit flips of every
//! header field and of the payload, forged checksums, trailing garbage, v1
//! and v2 — must surface as a **typed [`GraphError`]**, never a panic and
//! never a silently wrong partition. Each case is driven through the real
//! consumers (`open` → degree pass → budgeted CSR build → `stream_h2h` via
//! [`Hep::partition_file_with_report`]) under both IO backends.

use hep::core::Hep;
use hep::graph::partitioner::CollectedAssignment;
use hep::graph::{BinaryEdgeFile, EdgeList, GraphError, IoMode};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "hep_corrupt_{}_{}_{}.hepb",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
        name
    ))
}

/// Removes the case's temp file even when an assertion unwinds.
struct TempFileGuard(PathBuf);

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Writes `bytes` to disk and drives the full file pipeline over them.
/// Returns the typed error; panics (failing the test) if the corrupt bytes
/// are accepted end-to-end.
fn drive(bytes: &[u8], name: &str, mode: IoMode) -> GraphError {
    let path = temp_path(name);
    let _guard = TempFileGuard(path.clone());
    std::fs::write(&path, bytes).unwrap();
    let result = (|| {
        let file = BinaryEdgeFile::open(&path)?.with_io_mode(mode);
        let mut sink = CollectedAssignment::default();
        Hep::with_tau(10.0).partition_file_with_report(&file, 4, &mut sink)?;
        Ok(())
    })();
    match result {
        Err(e) => e,
        Ok(()) => panic!("corruption case {name:?} ({mode:?}) was accepted"),
    }
}

// ---- error-shape predicates ------------------------------------------------

fn bad_header(e: &GraphError) -> bool {
    matches!(e, GraphError::BadHeader(_))
}

fn header_mismatch(e: &GraphError) -> bool {
    matches!(e, GraphError::ChecksumMismatch { section: "header", .. })
}

fn payload_mismatch(e: &GraphError) -> bool {
    matches!(e, GraphError::ChecksumMismatch { section: "payload", .. })
}

/// A payload byte flip either breaks the checksum or (when the flipped word
/// leaves the vertex-id space) trips the range check first — both typed.
fn payload_mismatch_or_oor(e: &GraphError) -> bool {
    payload_mismatch(e) || matches!(e, GraphError::VertexOutOfRange { .. })
}

fn out_of_range(e: &GraphError) -> bool {
    matches!(e, GraphError::VertexOutOfRange { .. })
}

// ---- pristine-byte fixtures ------------------------------------------------

fn fixture_graph() -> EdgeList {
    hep::gen::GraphSpec::ChungLu { n: 1000, m: 4000, gamma: 2.2 }.generate(7)
}

/// Pristine v2 bytes (36-byte checksummed header + payload).
fn pristine_v2() -> Vec<u8> {
    let g = fixture_graph();
    let path = temp_path("pristine_v2");
    let _guard = TempFileGuard(path.clone());
    BinaryEdgeFile::write(&path, &g).unwrap();
    std::fs::read(&path).unwrap()
}

/// Pristine v1 bytes (20-byte checksum-free header + payload).
fn pristine_v1() -> Vec<u8> {
    let g = fixture_graph();
    let path = temp_path("pristine_v1");
    let _guard = TempFileGuard(path.clone());
    BinaryEdgeFile::write_v1(&path, &g).unwrap();
    std::fs::read(&path).unwrap()
}

const V2_HEADER: usize = 36;
const V1_HEADER: usize = 20;

fn flip(bytes: &[u8], offset: usize, mask: u8) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[offset] ^= mask;
    b
}

fn zero_range(bytes: &[u8], range: std::ops::Range<usize>) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[range].fill(0);
    b
}

fn set_u32(bytes: &[u8], offset: usize, value: u32) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    b
}

fn set_u64(bytes: &[u8], offset: usize, value: u64) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    b
}

/// Re-stamps a v2 header checksum over (possibly forged) bytes 0..20 — the
/// attacker who fixes up the checksum after forging a field.
fn refit_header_checksum(bytes: &[u8]) -> Vec<u8> {
    let digest = hep::ds::hasher::hash64(&bytes[..20], 0x4845_5042_0000_0002);
    set_u64(bytes, 20, digest)
}

fn append(bytes: &[u8], extra: &[u8]) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b.extend_from_slice(extra);
    b
}

// ---- the battery -----------------------------------------------------------

type Case = (&'static str, Vec<u8>, fn(&GraphError) -> bool);

fn cases() -> Vec<Case> {
    let v2 = pristine_v2();
    let v1 = pristine_v1();
    let v2_len = v2.len();
    let mid_edge = V2_HEADER + (v2_len - V2_HEADER) / 16 * 8;
    let mut cases: Vec<Case> = vec![
        // Truncation at (and inside) every v2 section boundary.
        ("empty-file", Vec::new(), bad_header),
        ("one-byte", v2[..1].to_vec(), bad_header),
        ("mid-magic", v2[..3].to_vec(), bad_header),
        ("magic-only", v2[..4].to_vec(), bad_header),
        ("mid-version", v2[..7].to_vec(), bad_header),
        ("magic-and-version", v2[..8].to_vec(), bad_header),
        ("mid-num-vertices", v2[..11].to_vec(), bad_header),
        ("through-counts", v2[..20].to_vec(), bad_header),
        ("mid-header-checksum", v2[..27].to_vec(), bad_header),
        ("through-header-checksum", v2[..28].to_vec(), bad_header),
        ("mid-payload-checksum", v2[..35].to_vec(), bad_header),
        ("header-only", v2[..V2_HEADER].to_vec(), bad_header),
        ("mid-first-edge", v2[..V2_HEADER + 5].to_vec(), bad_header),
        ("mid-payload-edge", v2[..mid_edge + 3].to_vec(), bad_header),
        ("one-byte-short", v2[..v2_len - 1].to_vec(), bad_header),
        // Magic and version damage (checked before any checksum).
        ("magic-bit-flip", flip(&v2, 0, 0x01), bad_header),
        ("magic-zeroed", zero_range(&v2, 0..4), bad_header),
        ("version-zero", set_u32(&v2, 4, 0), bad_header),
        ("version-three", set_u32(&v2, 4, 3), bad_header),
        ("version-high-bit", flip(&v2, 7, 0x80), bad_header),
        // Count-field flips: the header checksum rejects them before the
        // forged value reaches length arithmetic or an allocation.
        ("num-vertices-low-bit", flip(&v2, 8, 0x01), header_mismatch),
        ("num-vertices-high-byte", flip(&v2, 11, 0xFF), header_mismatch),
        ("num-edges-low-bit", flip(&v2, 12, 0x01), header_mismatch),
        ("num-edges-high-byte", flip(&v2, 19, 0xFF), header_mismatch),
        ("num-edges-zeroed", zero_range(&v2, 12..20), header_mismatch),
        // Damage to the checksum fields themselves.
        ("header-checksum-bit-flip", flip(&v2, 20, 0x04), header_mismatch),
        ("header-checksum-zeroed", zero_range(&v2, 20..28), header_mismatch),
        ("payload-checksum-bit-flip", flip(&v2, 28, 0x01), payload_mismatch),
        ("payload-checksum-zeroed", zero_range(&v2, 28..36), payload_mismatch),
        // Payload damage: caught by the running payload checksum (or by
        // the vertex range check, when the flipped word escapes the id
        // space — either way typed, never silent).
        ("payload-first-byte", flip(&v2, V2_HEADER, 0x01), payload_mismatch_or_oor),
        ("payload-mid-byte", flip(&v2, mid_edge + 1, 0x10), payload_mismatch_or_oor),
        ("payload-last-byte", flip(&v2, v2_len - 1, 0x40), payload_mismatch_or_oor),
        (
            "payload-first-edge-zeroed",
            {
                // Vertex 0 exists, so (0, 0) stays in range: only the checksum
                // can tell this file has been rewritten.
                zero_range(&v2, V2_HEADER..V2_HEADER + 8)
            },
            payload_mismatch,
        ),
        (
            "payload-edges-swapped",
            {
                let mut b = v2.clone();
                let (first, last) = (V2_HEADER, v2_len - 8);
                for i in 0..8 {
                    b.swap(first + i, last + i);
                }
                assert_ne!(b, v2, "fixture must have distinct first/last edges");
                b
            },
            payload_mismatch,
        ),
        // Forged counts with a re-fitted header checksum: the attacker who
        // recomputes the checksum still cannot make the length lie...
        (
            "forged-num-edges-refit-checksum",
            {
                let ne = u64::from_le_bytes(v2[12..20].try_into().unwrap());
                refit_header_checksum(&set_u64(&v2, 12, ne + 1))
            },
            bad_header,
        ),
        // ...and padding the payload to match the forged length then
        // breaks the payload checksum (it hashes the padded bytes).
        (
            "forged-num-edges-refit-and-padded",
            {
                let ne = u64::from_le_bytes(v2[12..20].try_into().unwrap());
                append(&refit_header_checksum(&set_u64(&v2, 12, ne + 1)), &[0u8; 8])
            },
            payload_mismatch,
        ),
        (
            "forged-huge-num-edges-refit",
            { refit_header_checksum(&set_u64(&v2, 12, 1 << 61)) },
            bad_header,
        ),
        // Length lies without touching the header.
        ("trailing-garbage", append(&v2, &[0xAB; 4]), bad_header),
        ("extra-edge-appended", append(&v2, &[0u8; 8]), bad_header),
        ("doubled-payload", append(&v2, &v2[V2_HEADER..]), bad_header),
        // v1 files carry no checksums: every *detectable* corruption —
        // truncation, length mismatch, version/magic damage, out-of-range
        // ids — must still be typed.
        ("v1-mid-header", v1[..10].to_vec(), bad_header),
        ("v1-header-only", v1[..V1_HEADER].to_vec(), bad_header),
        ("v1-mid-first-edge", v1[..V1_HEADER + 4].to_vec(), bad_header),
        ("v1-one-byte-short", v1[..v1.len() - 1].to_vec(), bad_header),
        ("v1-bad-magic", flip(&v1, 1, 0xFF), bad_header),
        ("v1-version-seven", set_u32(&v1, 4, 7), bad_header),
        ("v1-trailing-garbage", append(&v1, &[1, 2, 3]), bad_header),
        (
            "v1-num-edges-minus-one",
            {
                let ne = u64::from_le_bytes(v1[12..20].try_into().unwrap());
                set_u64(&v1, 12, ne - 1)
            },
            bad_header,
        ),
        (
            "v1-num-edges-plus-one",
            {
                let ne = u64::from_le_bytes(v1[12..20].try_into().unwrap());
                set_u64(&v1, 12, ne + 1)
            },
            bad_header,
        ),
        ("v1-forged-huge-num-edges", set_u64(&v1, 12, u64::MAX / 2), bad_header),
        ("v1-num-vertices-shrunk", set_u32(&v1, 8, 1), out_of_range),
        ("v1-payload-vertex-out-of-range", { set_u32(&v1, V1_HEADER + 4, u32::MAX) }, out_of_range),
    ];
    // The v2 twins of the v1 payload corruptions: the checksum catches
    // them even when the damaged words stay inside the vertex-id space.
    cases.push((
        "num-vertices-shrunk-refit",
        { refit_header_checksum(&set_u32(&v2, 8, 1)) },
        out_of_range,
    ));
    cases.push((
        "payload-vertex-out-of-range",
        { set_u32(&v2, V2_HEADER + 4, u32::MAX) },
        payload_mismatch_or_oor,
    ));
    cases
}

#[test]
fn every_corruption_yields_a_typed_error_under_both_backends() {
    let cases = cases();
    assert!(cases.len() >= 40, "battery shrank to {} cases", cases.len());
    let mut names = std::collections::HashSet::new();
    for (name, bytes, check) in &cases {
        assert!(names.insert(*name), "duplicate case name {name:?}");
        for mode in [IoMode::Buffered, IoMode::Mmap] {
            let err = drive(bytes, name, mode);
            assert!(
                check(&err),
                "case {name:?} ({mode:?}): unexpected error shape: {err:?} ({err})"
            );
        }
    }
}

/// Files that shrink *after* `open` validated their length: below the
/// header the pass refuses up front; mid-payload the edge iterator reports
/// the exact truncation. (Buffered backend: an mmap of the old length
/// cannot observe a later shrink without a fault, which is why `pass()`
/// re-checks the on-disk length each time.)
#[test]
fn shrink_after_open_is_typed_not_a_panic() {
    let bytes = pristine_v2();
    for (name, keep, want_bad_header) in
        [("below-header", V2_HEADER - 6, true), ("mid-payload", V2_HEADER + 8 * 3 + 3, false)]
    {
        let path = temp_path(name);
        let _guard = TempFileGuard(path.clone());
        std::fs::write(&path, &bytes).unwrap();
        let file = BinaryEdgeFile::open(&path).unwrap().with_io_mode(IoMode::Buffered);
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(keep as u64).unwrap();
        let mut sink = CollectedAssignment::default();
        let err = Hep::with_tau(10.0)
            .partition_file_with_report(&file, 4, &mut sink)
            .expect_err("shrunk file must not partition");
        if want_bad_header {
            assert!(bad_header(&err), "{name}: {err:?}");
        } else {
            assert!(matches!(err, GraphError::TruncatedBinary { .. }), "{name}: {err:?}");
        }
    }
}

/// The flip side of the battery: pristine files of both versions sail
/// through the same driver, and the two formats agree bit-for-bit.
#[test]
fn pristine_files_of_both_versions_still_partition_identically() {
    let run = |bytes: &[u8], name: &str| {
        let path = temp_path(name);
        let _guard = TempFileGuard(path.clone());
        std::fs::write(&path, bytes).unwrap();
        let file = BinaryEdgeFile::open(&path).unwrap();
        let mut sink = CollectedAssignment::default();
        Hep::with_tau(10.0).partition_file_with_report(&file, 4, &mut sink).unwrap();
        sink.assignments
    };
    assert_eq!(run(&pristine_v2(), "ok_v2"), run(&pristine_v1(), "ok_v1"));
}
