//! Failure injection: every public entry point must reject invalid inputs
//! with a descriptive error instead of panicking or producing garbage.

use hep::graph::partitioner::CollectedAssignment;
use hep::graph::{EdgeList, EdgePartitioner, GraphError};

fn tiny_graph() -> EdgeList {
    EdgeList::from_pairs([(0, 1), (1, 2)])
}

fn all_partitioners() -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(hep::core::Hep::with_tau(10.0)),
        Box::new(hep::core::SimpleHybrid::with_tau(10.0)),
        Box::new(hep::baselines::Ne::default()),
        Box::new(hep::baselines::Sne::default()),
        Box::new(hep::baselines::Dne::default()),
        Box::new(hep::baselines::MetisLike::default()),
        Box::new(hep::baselines::Hdrf::default()),
        Box::new(hep::baselines::Greedy::default()),
        Box::new(hep::baselines::Adwise::default()),
        Box::new(hep::baselines::Dbh::default()),
        Box::new(hep::baselines::Grid::default()),
        Box::new(hep::baselines::RandomStreaming::default()),
    ]
}

#[test]
fn every_partitioner_rejects_k_below_2() {
    for mut p in all_partitioners() {
        let mut sink = CollectedAssignment::default();
        for k in [0, 1] {
            match p.partition(&tiny_graph(), k, &mut sink) {
                Err(GraphError::InvalidPartitionCount { .. }) => {}
                other => panic!("{} accepted k={k}: {other:?}", p.name()),
            }
        }
    }
}

#[test]
fn every_partitioner_rejects_empty_graph() {
    let empty = EdgeList::from_pairs(std::iter::empty());
    for mut p in all_partitioners() {
        let mut sink = CollectedAssignment::default();
        match p.partition(&empty, 4, &mut sink) {
            Err(GraphError::EmptyGraph) => {}
            other => panic!("{} accepted an empty graph: {other:?}", p.name()),
        }
    }
}

#[test]
fn hep_rejects_invalid_config() {
    let g = tiny_graph();
    let mut sink = CollectedAssignment::default();
    for tau in [0.0, -5.0, f64::NAN] {
        assert!(
            hep::core::Hep::with_tau(tau).partition(&g, 2, &mut sink).is_err(),
            "tau={tau} accepted"
        );
    }
    let mut bad_alpha = hep::core::Hep::with_tau(10.0);
    bad_alpha.config.alpha = 0.5;
    assert!(bad_alpha.partition(&g, 2, &mut sink).is_err());
    let mut bad_lambda = hep::core::Hep::with_tau(10.0);
    bad_lambda.config.lambda = -1.0;
    assert!(bad_lambda.partition(&g, 2, &mut sink).is_err());
}

#[test]
fn graph_io_rejects_malformed_files() {
    let mut p = std::env::temp_dir();
    p.push(format!("hep_failure_{}.bin", std::process::id()));
    std::fs::write(&p, [1u8, 2, 3, 4, 5]).unwrap();
    assert!(matches!(EdgeList::read_binary(&p), Err(GraphError::TruncatedBinary { bytes: 5 })));
    std::fs::write(&p, "1 2\nbroken line\n").unwrap();
    assert!(matches!(EdgeList::read_text(&p), Err(GraphError::Parse { line: 2, .. })));
    std::fs::remove_file(&p).ok();
    assert!(EdgeList::read_binary("/nonexistent/path.bin").is_err());
}

#[test]
fn with_vertices_rejects_out_of_range_ids() {
    assert!(matches!(
        EdgeList::with_vertices(2, [(0, 5)]),
        Err(GraphError::VertexOutOfRange { vertex: 5, num_vertices: 2 })
    ));
}

#[test]
fn planner_rejects_degenerate_grids() {
    let g = tiny_graph();
    assert!(hep::core::plan_tau(&g, 4, 1000, &[]).is_err());
    assert!(hep::core::plan_tau(&g, 4, 1000, &[-1.0]).is_err());
    assert!(hep::core::plan_tau(&g, 4, 1000, &[0.0]).is_err());
}

#[test]
fn duplicate_and_loop_inputs_are_canonicalized_not_crashed() {
    let mut g = EdgeList::from_pairs([(0, 0), (0, 1), (1, 0), (0, 1), (1, 1)]);
    g.canonicalize();
    assert_eq!(g.num_edges(), 1);
    let mut sink = CollectedAssignment::default();
    hep::core::Hep::with_tau(10.0).partition(&g, 2, &mut sink).expect("partition");
    assert_eq!(sink.assignments.len(), 1);
}

#[test]
fn isolated_vertices_are_tolerated_everywhere() {
    let g = EdgeList::with_vertices(100, [(0, 1), (1, 2), (2, 3)]).unwrap();
    for mut p in all_partitioners() {
        let mut sink = CollectedAssignment::default();
        p.partition(&g, 2, &mut sink).unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
        assert_eq!(sink.assignments.len(), 3, "{}", p.name());
        sink.assignments.clear();
    }
}
