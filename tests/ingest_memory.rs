//! Alloc-tracked property of the out-of-core ingestion pipeline: the
//! actual peak heap of the degree pass + budgeted CSR build stays under
//! [`hep::core::ingest_peak_bytes`]'s accounting, which in turn stays
//! under the configured `HEP_MEMORY_BUDGET` — including on inputs whose
//! materialized `EdgeList` alone would blow the budget.
//!
//! This binary installs the counting allocator (the reproduction's max-RSS
//! proxy, see `hep::metrics::alloc_track`), so it must stay its own
//! integration-test binary: the tracked regions are process-wide.

use hep::core::{
    estimate_stream_overhead_bytes, ingest_file_budgeted, ingest_peak_bytes, plan_ingest,
    stream_h2h, IngestPlan,
};
use hep::graph::{BinaryEdgeFile, Edge, EdgeList, IoMode, PrunedCsr};
use hep::metrics::alloc_track::{self, CountingAlloc};
use std::path::PathBuf;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One measured region at a time: the peak counter is process-wide.
static REGION: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct TempFileGuard(PathBuf);

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn write_file(graph: &EdgeList, name: &str) -> (BinaryEdgeFile, TempFileGuard) {
    let mut path = std::env::temp_dir();
    path.push(format!("hep_ingest_mem_{}_{}.hepb", std::process::id(), name));
    let file = BinaryEdgeFile::write(&path, graph).unwrap();
    (file, TempFileGuard(path))
}

/// Runs the exact pipeline region the budget governs — the degree pass and
/// the column sweeps of [`ingest_file_budgeted`] — under the counting
/// allocator. Returns the built CSR, the executed plan, the h2h count, and
/// the measured peak heap in bytes. The buffered backend is the
/// conservative one to track: its pass buffers live on the heap, where
/// mmap pages would be invisible to the allocator.
fn measured_ingest(
    file: &BinaryEdgeFile,
    tau: f64,
    budget: Option<u64>,
) -> (PrunedCsr, IngestPlan, u64, u64) {
    let guard = REGION.lock().unwrap_or_else(|p| p.into_inner());
    alloc_track::reset_peak();
    let baseline = alloc_track::current_bytes();
    let mut h2h = 0u64;
    let result = ingest_file_budgeted(file, tau, budget, IoMode::Buffered, None, |_| h2h += 1);
    let peak = alloc_track::peak_bytes().saturating_sub(baseline) as u64;
    drop(guard);
    let (csr, plan) = result.unwrap();
    (csr, plan, h2h, peak)
}

/// `peak ≤ planner estimate ≤ budget` across {tight, 2×tight, unbounded}
/// budgets at two scales — and the budgeted builds are bit-identical to
/// the unbounded one.
#[test]
fn peak_ingestion_within_estimate_within_budget_across_scales() {
    let tau = 10.0;
    for (n, m, seed) in [(2_000u32, 16_000u64, 1u64), (20_000, 160_000, 2)] {
        let g = hep::gen::GraphSpec::ChungLu { n, m, gamma: 2.2 }.generate(seed);
        let (file, _guard) = write_file(&g, &format!("scales_{n}"));
        let (base_csr, base_plan, base_h2h, base_peak) = measured_ingest(&file, tau, None);
        assert_eq!(base_plan.tau, tau);
        assert_eq!(base_plan.column_passes, 1, "unbounded ingestion is a single sweep");
        assert!(
            base_peak <= base_plan.estimated_peak_bytes,
            "n={n}: unbounded peak {base_peak} exceeds estimate {}",
            base_plan.estimated_peak_bytes
        );
        // One byte under the single-sweep peak forces extra sweeps (tight);
        // double that comfortably readmits the single sweep (2×).
        let tight = base_plan.estimated_peak_bytes - 1;
        for budget in [tight, 2 * tight] {
            let (csr, plan, h2h, peak) = measured_ingest(&file, tau, Some(budget));
            assert_eq!(plan.tau, tau, "these budgets are satisfiable without degrading τ");
            assert!(
                plan.estimated_peak_bytes <= budget,
                "n={n}: estimate {} over budget {budget}",
                plan.estimated_peak_bytes
            );
            assert!(
                peak <= plan.estimated_peak_bytes,
                "n={n}, budget {budget}: peak {peak} exceeds estimate {}",
                plan.estimated_peak_bytes
            );
            assert!(peak <= budget, "n={n}: peak {peak} exceeds budget {budget}");
            if budget == tight {
                assert!(plan.column_passes > 1, "tight budget must force extra sweeps");
            }
            assert_eq!(csr, base_csr, "budgeted build diverged from unbounded build");
            assert_eq!(h2h, base_h2h);
        }
    }
}

/// When no sweep count fits the requested τ, the planner degrades τ — more
/// edges go to the streaming side, the CSR shrinks into the budget — and
/// the measured peak still honors both the estimate and the budget.
#[test]
fn tau_degrades_rather_than_exceeding_budget() {
    let requested = 100.0;
    let g = hep::gen::GraphSpec::ChungLu { n: 3_000, m: 24_000, gamma: 2.2 }.generate(3);
    let (file, _guard) = write_file(&g, "degrade");
    let stats = file.degree_stats(requested).unwrap();
    let n = stats.num_vertices() as u64;
    // A budget between the all-high floor (zero column entries) and the
    // requested τ's footprint at maximum chunking: only a lower τ fits.
    let floor = ingest_peak_bytes(n, 0, 64);
    let requested_peak = ingest_peak_bytes(n, stats.low_degree_adjacency_entries(), 64);
    assert!(requested_peak > floor, "fixture must have low-degree adjacency to shed");
    let budget = floor + (requested_peak - floor) / 8;
    let plan = plan_ingest(&stats.degrees, stats.mean_degree, requested, Some(budget), 0).unwrap();
    assert!(plan.tau < requested, "planner must degrade τ, got {}", plan.tau);
    let (_, base_plan, base_h2h, _) = measured_ingest(&file, requested, None);
    assert_eq!(base_plan.tau, requested);
    let (csr, ran, h2h, peak) = measured_ingest(&file, requested, Some(budget));
    assert_eq!(ran, plan, "driver must execute the planner's plan");
    assert!(ran.estimated_peak_bytes <= budget);
    assert!(peak <= ran.estimated_peak_bytes, "peak {peak} over estimate");
    assert!(peak <= budget, "peak {peak} over budget {budget}");
    assert!(h2h > base_h2h, "a degraded τ must stream more edges");
    assert_eq!(csr.num_inmem_edges() + h2h, g.num_edges(), "coverage must survive degradation");
}

/// The phase-2 companion bound: the batched streaming engine's measured
/// peak heap — the sparse replica index, the conflict detector, the load
/// tracker, the batch buffers, and the final dense export — stays under
/// [`estimate_stream_overhead_bytes`], the term `plan_ingest` charges
/// against the budget. The h2h workload, degree table, and seed sets are
/// built outside the measured region (the engine *consumes* the seed sets;
/// the estimate covers everything it allocates beyond them), and the sink
/// is a counting closure so no assignment storage muddies the measurement.
#[test]
fn stream_engine_peak_stays_within_planner_estimate() {
    let n = 10_000u32;
    let m = 50_000usize;
    let k = 32u32;
    let mut rng = hep::ds::SplitMix64::new(17);
    let mut edges = Vec::with_capacity(m);
    let mut degrees = vec![0u32; n as usize];
    for _ in 0..m {
        // Square one draw toward low ids: hub rows grow toward the k clamp.
        let a = (rng.next_below(n as u64) * rng.next_below(n as u64) / n as u64) as u32;
        let b = rng.next_below(n as u64) as u32;
        edges.push(Edge::new(a, b));
        degrees[a as usize] += 1;
        degrees[b as usize] += 1;
    }
    let mut seed_sets: Vec<hep::ds::DenseBitset> =
        (0..k).map(|_| hep::ds::DenseBitset::new(n as usize)).collect();
    let mut sizes = vec![0u64; k as usize];
    for v in 0..2_000u32 {
        seed_sets[(v % k) as usize].set(v);
    }
    for (p, s) in sizes.iter_mut().enumerate() {
        *s = (p as u64) * 11;
    }
    for batch in [64usize, 4096] {
        let estimate = estimate_stream_overhead_bytes(&degrees, k, batch);
        // Clone the consumed inputs outside the measured region: the
        // estimate covers the engine's own state, not its seed sets.
        let (run_sets, run_sizes) = (seed_sets.clone(), sizes.clone());
        let guard = REGION.lock().unwrap_or_else(|p| p.into_inner());
        alloc_track::reset_peak();
        let baseline = alloc_track::current_bytes();
        let mut assigned = 0u64;
        let mut sink = |_u: u32, _v: u32, _p: u32| assigned += 1;
        let result = stream_h2h(
            edges.iter().copied(),
            &degrees,
            run_sets,
            run_sizes,
            2 * m as u64,
            1.1,
            1.05,
            batch,
            &mut sink,
        );
        let peak = alloc_track::peak_bytes().saturating_sub(baseline) as u64;
        drop(guard);
        let state = result.unwrap();
        assert_eq!(assigned, m as u64);
        assert_eq!(
            (0..k).map(|p| state.load(p)).sum::<u64>(),
            m as u64 + sizes.iter().sum::<u64>()
        );
        assert!(
            peak <= estimate,
            "batch {batch}: stream peak {peak} exceeds planner estimate {estimate}"
        );
    }
}

/// The acceptance input: a graph whose materialized `EdgeList` alone
/// (8 bytes/edge) exceeds the budget, but whose h2h-heavy structure lets
/// the out-of-core pipeline ingest it far under that budget — the §4.2
/// promise that memory is bounded by the *retained* structure, not |E|.
#[test]
fn ingests_graph_whose_edge_list_exceeds_the_budget() {
    // A dense hub clique (all h2h at τ=1: every hub is far above the mean
    // degree) plus degree-1 spokes that keep the mean low.
    let hubs: u32 = 1_500;
    let spokes: u32 = 5_000;
    let mut pairs = Vec::new();
    for a in 0..hubs {
        for b in (a + 1)..hubs {
            pairs.push((a, b));
        }
    }
    for s in 0..spokes {
        pairs.push((hubs + s, s % hubs));
    }
    let g = EdgeList::from_pairs(pairs);
    let (file, _guard) = write_file(&g, "hub_clique");
    let edge_list_bytes = 8 * file.num_edges();
    let budget = 4 << 20;
    assert!(
        edge_list_bytes > 2 * budget,
        "fixture too small: EdgeList is only {edge_list_bytes} bytes"
    );
    let (csr, plan, h2h, peak) = measured_ingest(&file, 1.0, Some(budget));
    assert!(plan.estimated_peak_bytes <= budget);
    assert!(peak <= plan.estimated_peak_bytes, "peak {peak} over estimate");
    assert!(peak <= budget, "peak {peak} exceeds the {budget}-byte budget");
    assert_eq!(csr.num_inmem_edges() + h2h, g.num_edges());
    assert!(
        h2h > file.num_edges() / 2,
        "the clique should stream: {h2h} of {} h2h",
        file.num_edges()
    );
}
