//! Property suite for the instruction-set determinism invariant, the
//! sibling of `tests/parallel_determinism`: every dispatched kernel in
//! `hep_ds::kernels` must be **bitwise-equal to the scalar path at any
//! input width** — aligned 256-bit blocks and ragged tails alike — and
//! the full HEP pipeline must produce identical assignments under
//! `HEP_KERNEL=scalar` and `HEP_KERNEL=auto`.
//!
//! On a host without AVX2 the dispatched path *is* the scalar path and
//! every property passes trivially; on an AVX2 host these properties pin
//! the intrinsics.

use hep::ds::kernels::{self, Kernel};
use hep::ds::{DenseBitset, SplitMix64};
use proptest::prelude::*;

/// Pseudo-random word fill so tails and blocks carry arbitrary patterns.
fn random_words(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn count_ones_matches_scalar(len in 0usize..600, seed in 0u64..10_000) {
        let words = random_words(len, seed);
        prop_assert_eq!(
            kernels::count_ones_with(Kernel::Avx2, &words),
            kernels::count_ones_with(Kernel::Scalar, &words)
        );
    }

    #[test]
    fn intersection_count_matches_scalar(len in 0usize..600, seed in 0u64..10_000) {
        let a = random_words(len, seed);
        let b = random_words(len, seed ^ 0xdead_beef);
        prop_assert_eq!(
            kernels::intersection_count_with(Kernel::Avx2, &a, &b),
            kernels::intersection_count_with(Kernel::Scalar, &a, &b)
        );
    }

    #[test]
    fn union_and_difference_match_scalar(len in 0usize..600, seed in 0u64..10_000) {
        let a = random_words(len, seed);
        let b = random_words(len, seed.wrapping_add(1));
        let (mut u_s, mut u_v) = (a.clone(), a.clone());
        kernels::union_with_with(Kernel::Scalar, &mut u_s, &b);
        kernels::union_with_with(Kernel::Avx2, &mut u_v, &b);
        prop_assert_eq!(u_s, u_v);
        let (mut d_s, mut d_v) = (a.clone(), a);
        kernels::difference_with_with(Kernel::Scalar, &mut d_s, &b);
        kernels::difference_with_with(Kernel::Avx2, &mut d_v, &b);
        prop_assert_eq!(d_s, d_v);
    }

    #[test]
    fn union_count_matches_scalar(
        len in 0usize..300,
        family in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let sets: Vec<Vec<u64>> =
            (0..family).map(|i| random_words(len, seed.wrapping_add(i as u64 * 77))).collect();
        let refs: Vec<&[u64]> = sets.iter().map(|s| s.as_slice()).collect();
        prop_assert_eq!(
            kernels::union_count_with(Kernel::Avx2, &refs),
            kernels::union_count_with(Kernel::Scalar, &refs)
        );
    }

    #[test]
    fn count_members_matches_scalar(
        len in 0usize..300,
        ids in proptest::collection::vec(any::<u32>(), 0..200),
        seed in 0u64..10_000,
    ) {
        // Fully arbitrary ids: in-range, out-of-range, duplicated — the
        // gather path must agree with the scalar membership test on all.
        let words = random_words(len, seed);
        prop_assert_eq!(
            kernels::count_members_with(Kernel::Avx2, &words, &ids),
            kernels::count_members_with(Kernel::Scalar, &words, &ids)
        );
    }

    #[test]
    fn bitset_ops_are_kernel_invariant(seed in 0u64..10_000, bits in 1usize..3000) {
        // The DenseBitset surface under a *forced* kernel: same results
        // whether the dispatched choice is scalar or (where available)
        // AVX2, at a capacity chosen to exercise ragged tails.
        let mut rng = SplitMix64::new(seed);
        let mut a = DenseBitset::new(bits);
        let mut b = DenseBitset::new(bits);
        for _ in 0..bits / 2 {
            a.set((rng.next_u64() % bits as u64) as u32);
            b.set((rng.next_u64() % bits as u64) as u32);
        }
        let ids: Vec<u32> = (0..64).map(|_| (rng.next_u64() % (bits as u64 * 2)) as u32).collect();
        let observe = |k: Kernel| {
            kernels::with_kernel(k, || {
                let mut u = a.clone();
                u.union_with(&b);
                let mut d = a.clone();
                d.difference_with(&b);
                (
                    a.count_ones(),
                    a.intersection_count(&b),
                    u.iter_ones().collect::<Vec<_>>(),
                    d.iter_ones().collect::<Vec<_>>(),
                    DenseBitset::union_count(&[a.clone(), b.clone()]),
                    a.count_members(&ids),
                )
            })
        };
        prop_assert_eq!(observe(Kernel::Scalar), observe(Kernel::Avx2));
    }
}

/// The full-pipeline fingerprint: HEP end to end (serial and split paths,
/// refinement on) under `HEP_KERNEL=scalar` vs the auto-dispatched
/// kernel, compared assignment-for-assignment. This is what makes the
/// kernel layer safe to enable unconditionally: no partition anyone
/// computes can depend on the host's instruction set.
#[test]
fn full_pipeline_fingerprint_is_kernel_invariant() {
    let auto = if kernels::avx2_available() { Kernel::Avx2 } else { Kernel::Scalar };
    for seed in [7u64, 21] {
        let g = hep::gen::GraphSpec::ChungLu { n: 2_000, m: 16_000, gamma: 2.2 }.generate(seed);
        for split in [1u32, 4] {
            let run = |k: Kernel| {
                kernels::with_kernel(k, || {
                    let mut config = hep::core::HepConfig::with_tau(10.0);
                    config.split_factor = split;
                    let hep = hep::core::Hep { config };
                    let mut sink = hep::graph::partitioner::CollectedAssignment::default();
                    let report = hep.partition_with_report(&g, 8, &mut sink).unwrap();
                    let m =
                        hep::metrics::PartitionMetrics::from_assignment(8, g.num_vertices, &sink);
                    (
                        sink.assignments,
                        report.partition_sizes,
                        m.replication_factor().to_bits(),
                        m.replica_counts(),
                    )
                })
            };
            let scalar = run(Kernel::Scalar);
            let dispatched = run(auto);
            assert_eq!(scalar, dispatched, "pipelines diverged at seed={seed} split={split}");
        }
    }
}

/// The hypergraph streaming path (min-max tie-break via the sparse
/// membership-count kernel) under both kernel flavors.
#[test]
fn hypergraph_minmax_is_kernel_invariant() {
    let h = hep::hyper::gen::power_law_hypergraph(800, 5_000, 8, 9);
    let run = |k: Kernel| {
        kernels::with_kernel(k, || {
            let (assignment, metrics) =
                hep::hyper::StreamingMinMax::default().partition(&h, 8).unwrap();
            (assignment, metrics.sizes)
        })
    };
    let auto = if kernels::avx2_available() { Kernel::Avx2 } else { Kernel::Scalar };
    assert_eq!(run(Kernel::Scalar), run(auto));
}
