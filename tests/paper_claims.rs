//! End-to-end checks of the paper's headline claims, at analog scale.
//! These are the load-bearing comparative results; if one of these breaks,
//! the reproduction no longer tells the paper's story.

use hep::graph::{EdgeList, EdgePartitioner};
use hep::metrics::PartitionMetrics;

fn rf(p: &mut dyn EdgePartitioner, g: &EdgeList, k: u32) -> f64 {
    let mut m = PartitionMetrics::new(k, g.num_vertices);
    p.partition(g, k, &mut m).expect("partitioning succeeds");
    m.replication_factor()
}

/// HEP pinned to the serial NE++ of §3.2. These tests certify the *paper's*
/// claims, which are about the serial algorithm; the `HEP_SPLIT_FACTOR`
/// environment ablation (sub-partitioned parallel NE++) trades some
/// replication factor for parallelism and has its own bounds in
/// `tests/parallel_determinism.rs`.
fn serial_hep(tau: f64) -> hep::core::Hep {
    let mut config = hep::core::HepConfig::with_tau(tau);
    config.split_factor = 1;
    hep::core::Hep { config }
}

fn web_graph() -> EdgeList {
    hep::gen::dataset("IT", 1).expect("IT exists").generate()
}

fn social_graph() -> EdgeList {
    hep::gen::dataset("OK", 1).expect("OK exists").generate()
}

/// §5.2 (1): HEP at high τ reaches replication factors competitive with NE,
/// the best partitioner throughout the paper's experiments.
#[test]
fn hep_100_tracks_ne_quality() {
    for g in [web_graph(), social_graph()] {
        let hep = rf(&mut serial_hep(100.0), &g, 32);
        let ne = rf(&mut hep::baselines::Ne::default(), &g, 32);
        assert!(hep <= ne * 1.10, "HEP-100 rf {hep} vs NE rf {ne}");
    }
}

/// §5.2 (2): even at τ = 1 (minimal memory), HEP beats the streaming
/// partitioners on replication factor.
#[test]
fn hep_1_beats_streaming() {
    for g in [web_graph(), social_graph()] {
        let hep = rf(&mut serial_hep(1.0), &g, 32);
        let hdrf = rf(&mut hep::baselines::Hdrf::default(), &g, 32);
        let dbh = rf(&mut hep::baselines::Dbh::default(), &g, 32);
        assert!(hep < hdrf, "HEP-1 rf {hep} vs HDRF rf {hdrf}");
        assert!(hep < dbh, "HEP-1 rf {hep} vs DBH rf {dbh}");
    }
}

/// §4.4: the memory footprint is monotone in τ, and the planner's choice is
/// honoured by the built representation.
#[test]
fn tau_controls_memory_monotonically() {
    let g = social_graph();
    let f = |tau| hep::core::estimate_footprint_bytes(&g, tau, 32);
    assert!(f(1.0) < f(10.0));
    assert!(f(10.0) <= f(100.0));
    let budget = f(10.0);
    let plan = hep::core::plan_tau(&g, 32, budget, &[100.0, 10.0, 1.0])
        .expect("valid grid")
        .expect("fits");
    assert!(plan.estimated_bytes <= budget);
    let built = hep::graph::PrunedCsr::build(&g, plan.tau).memory_footprint_paper(32);
    assert_eq!(built, plan.estimated_bytes);
}

/// §5.2: replication factor degrades gracefully as τ shrinks (the
/// memory/quality trade-off is a trade-off, not a cliff).
#[test]
fn rf_degrades_gracefully_with_tau() {
    let g = web_graph();
    let rf100 = rf(&mut serial_hep(100.0), &g, 32);
    let rf1 = rf(&mut serial_hep(1.0), &g, 32);
    assert!(rf100 <= rf1 * 1.02, "quality should not improve as memory shrinks");
    assert!(rf1 < rf100 * 2.5, "tau=1 should degrade gracefully: {rf100} -> {rf1}");
}

/// §5.4 / Figure 9: informed HDRF streaming beats random streaming of the
/// h2h edges (the simple hybrid), clearly at τ = 1.
#[test]
fn hep_beats_simple_hybrid() {
    let g = social_graph();
    let hep = rf(&mut serial_hep(1.0), &g, 32);
    let simple = rf(&mut hep::core::SimpleHybrid::with_tau(1.0), &g, 32);
    assert!(hep < simple, "HEP rf {hep} vs simple hybrid rf {simple}");
}

/// Figure 2's premise: low-degree vertices achieve much lower replication
/// than high-degree ones under both HDRF and NE.
#[test]
fn replication_grows_with_degree() {
    let g = hep::gen::dataset("LJ", 1).expect("LJ exists").generate();
    let degrees = g.degrees();
    for p in [
        Box::new(hep::baselines::Hdrf::default()) as Box<dyn EdgePartitioner>,
        Box::new(hep::baselines::Ne::default()),
    ] {
        let mut p = p;
        let mut m = PartitionMetrics::new(32, g.num_vertices);
        p.partition(&g, 32, &mut m).expect("partitioning succeeds");
        let buckets = m.degree_bucket_rf(&degrees);
        let (first, _) = buckets.first().expect("non-empty");
        let (last, n) = buckets.iter().rev().find(|&&(_, n)| n > 0).expect("non-empty");
        assert!(
            last > &(first * 2.0),
            "{}: rf {first} (low degree) vs {last} (high degree, {n} vertices)",
            p.name()
        );
    }
}

/// Figure 8's web-vs-social contrast: every degree-aware partitioner gets a
/// lower RF on the web analog than on the social analog.
#[test]
fn web_graphs_partition_better_than_social() {
    let web = web_graph();
    let social = social_graph();
    let ne_web = rf(&mut hep::baselines::Ne::default(), &web, 32);
    let ne_social = rf(&mut hep::baselines::Ne::default(), &social, 32);
    assert!(ne_web < ne_social, "NE: web {ne_web} vs social {ne_social}");
    let hep_web = rf(&mut serial_hep(10.0), &web, 32);
    let hep_social = rf(&mut serial_hep(10.0), &social, 32);
    assert!(hep_web < hep_social, "HEP: web {hep_web} vs social {hep_social}");
}

/// Table 4's correlation: lower replication factor means fewer simulated
/// synchronization messages for PageRank.
#[test]
fn processing_cost_tracks_replication() {
    use hep::graph::partitioner::CollectedAssignment;
    use hep::procsim::{pagerank, ClusterCost, DistributedGraph};
    let g = web_graph();
    let k = 32;
    let mut outcomes = Vec::new();
    for p in [
        Box::new(serial_hep(10.0)) as Box<dyn EdgePartitioner>,
        Box::new(hep::baselines::Hdrf::default()),
        Box::new(hep::baselines::RandomStreaming::default()),
    ] {
        let mut p = p;
        let mut sink = CollectedAssignment::default();
        p.partition(&g, k, &mut sink).expect("partitioning succeeds");
        let dg = DistributedGraph::load(&g, &sink, k);
        let (_, cost) = pagerank(&dg, 5, &ClusterCost::default());
        outcomes.push((dg.replication_factor(), cost.total_msgs));
    }
    for w in outcomes.windows(2) {
        assert!(w[0].0 < w[1].0, "rf ordering: {outcomes:?}");
        assert!(w[0].1 < w[1].1, "msg ordering: {outcomes:?}");
    }
}
