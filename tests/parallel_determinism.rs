//! Property suite for the workspace determinism invariant: every component
//! converted to the `hep-par` pool must produce **bit-identical output at
//! `HEP_THREADS=1` and `HEP_THREADS=8`** (and, by the same construction,
//! any other count). Each property runs the same seeded workload once per
//! thread setting and compares the results exactly — including `f64` bit
//! patterns where floating point is involved.

use proptest::prelude::*;

/// The pair of runs every property compares. `hep_par::with_threads` pins
/// the pool width for each run and serializes against every other caller
/// in the process, so concurrent properties cannot override each other.
fn serial_vs_parallel<T>(f: impl Fn() -> T) -> (T, T) {
    (hep::par::with_threads(1, &f), hep::par::with_threads(8, &f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chung_lu_is_thread_invariant(seed in 0u64..1000, m in 2_000u64..60_000) {
        let n = (m / 8).max(16) as u32;
        let (a, b) = serial_vs_parallel(|| hep::gen::chunglu::chung_lu(n, m, 2.2, seed).edges);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_is_thread_invariant(seed in 0u64..1000, m in 2_000u64..60_000) {
        let n = (m / 6).max(32) as u32;
        let (a, b) = serial_vs_parallel(|| hep::gen::er::erdos_renyi(n, m, seed).edges);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rmat_is_thread_invariant(seed in 0u64..1000, m in 2_000u64..60_000) {
        let params = hep::gen::rmat::RmatParams::graph500();
        let (a, b) = serial_vs_parallel(|| hep::gen::rmat::rmat(14, m, params, seed).edges);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_is_thread_invariant(seed in 0u64..1000, n in 100u32..30_000) {
        let (a, b) = serial_vs_parallel(|| hep::gen::ba::barabasi_albert(n, 3, seed).edges);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn metrics_replay_is_thread_invariant(seed in 0u64..1000) {
        use hep::graph::EdgePartitioner;
        let g = hep::gen::GraphSpec::ChungLu { n: 1500, m: 12_000, gamma: 2.2 }.generate(seed);
        let k = 16;
        let mut collected = hep::graph::partitioner::CollectedAssignment::default();
        hep::baselines::Hdrf::default().partition(&g, k, &mut collected).unwrap();
        let (a, b) = serial_vs_parallel(|| {
            let m = hep::metrics::PartitionMetrics::from_assignment(k, g.num_vertices, &collected);
            (m.replica_counts(), m.edge_counts.clone(), m.replication_factor().to_bits())
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn validation_verdict_is_thread_invariant(seed in 0u64..1000, corrupt in 0u32..3) {
        use hep::graph::EdgePartitioner;
        let g = hep::gen::GraphSpec::ChungLu { n: 800, m: 6_000, gamma: 2.2 }.generate(seed);
        let k = 8;
        let mut collected = hep::graph::partitioner::CollectedAssignment::default();
        hep::baselines::Dbh::default().partition(&g, k, &mut collected).unwrap();
        // Corrupt the assignment in one of three ways (0 leaves it valid),
        // so the error *text* is compared across thread counts too.
        match corrupt {
            1 => collected.assignments[17].1 = k + 5,
            2 => collected.assignments[17].0 = collected.assignments[18].0,
            _ => {}
        }
        let (a, b) = serial_vs_parallel(|| hep::metrics::validate_assignment(&g, &collected, k));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.is_ok(), corrupt == 0);
    }

    #[test]
    fn procsim_workloads_are_thread_invariant(seed in 0u64..1000) {
        use hep::graph::EdgePartitioner;
        let g = hep::gen::GraphSpec::ChungLu { n: 600, m: 4_000, gamma: 2.2 }.generate(seed);
        let k = 8;
        let mut collected = hep::graph::partitioner::CollectedAssignment::default();
        hep::baselines::Hdrf::default().partition(&g, k, &mut collected).unwrap();
        let dg = hep::procsim::DistributedGraph::load(&g, &collected, k);
        let cost = hep::procsim::ClusterCost::default();
        let (a, b) = serial_vs_parallel(|| {
            let (ranks, pr_cost) = hep::procsim::pagerank(&dg, 5, &cost);
            let (dist, _) = hep::procsim::bfs_single(&dg, 0, &cost);
            let (labels, cc_cost) = hep::procsim::connected_components(&dg, &cost);
            let active: Vec<u32> = (0..g.num_vertices).collect();
            (
                ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                pr_cost.total_msgs,
                dist,
                labels,
                cc_cost.supersteps,
                dg.superstep_cost(&active),
            )
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dne_is_thread_invariant(seed in 0u64..1000) {
        use hep::graph::EdgePartitioner;
        let g = hep::gen::GraphSpec::ChungLu { n: 700, m: 5_000, gamma: 2.2 }.generate(seed);
        let (a, b) = serial_vs_parallel(|| {
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            hep::baselines::Dne::default().partition(&g, 8, &mut sink).unwrap();
            sink.assignments
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn graph_build_is_thread_invariant(seed in 0u64..1000) {
        // The chunked degree pass and pruned-CSR construction must produce
        // byte-identical structures at any worker count (entry order within
        // every adjacency list included — NE++'s scans depend on it).
        let g = hep::gen::GraphSpec::ChungLu { n: 20_000, m: 150_000, gamma: 2.2 }.generate(seed);
        let (a, b) = serial_vs_parallel(|| {
            let stats = hep::graph::DegreeStats::new(&g, 4.0);
            let mut h2h = Vec::new();
            let csr = hep::graph::PrunedCsr::build_streaming_h2h(&g, stats, |e| h2h.push(e));
            (csr, h2h)
        });
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn parallel_nepp_is_thread_invariant(seed in 0u64..1000, split in 2u32..6) {
        // The whole HEP pipeline with sub-partitioned NE++: bitwise-equal
        // assignment sequences at 1 and 8 workers for a fixed split factor.
        let g = hep::gen::GraphSpec::ChungLu { n: 1_500, m: 12_000, gamma: 2.2 }.generate(seed);
        let (a, b) = serial_vs_parallel(|| {
            let mut config = hep::core::HepConfig::with_tau(10.0);
            config.split_factor = split;
            let hep = hep::core::Hep { config };
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            hep.partition_with_report(&g, 8, &mut sink).unwrap();
            sink.assignments
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn refined_nepp_is_thread_invariant(
        seed in 0u64..1000,
        passes in prop_oneof![Just(0u32), Just(1), Just(3)],
    ) {
        // The boundary-aware FM refinement (and the hub-aware merge it
        // enables) must keep the whole pipeline bitwise-equal at 1 and 8
        // workers; `refine_passes = 0` pins the unrefined pack output on
        // the same invariant.
        let g = hep::gen::GraphSpec::ChungLu { n: 1_500, m: 12_000, gamma: 2.2 }.generate(seed);
        let (a, b) = serial_vs_parallel(|| {
            let mut config = hep::core::HepConfig::with_tau(10.0);
            config.split_factor = 4;
            config.refine_passes = passes;
            let hep = hep::core::Hep { config };
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            hep.partition_with_report(&g, 8, &mut sink).unwrap();
            sink.assignments
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn refine_parallel_commit_is_thread_invariant(
        seed in 0u64..1000,
        k in prop_oneof![Just(8u32), Just(32), Just(64)],
        passes in 1u32..4,
    ) {
        // The PR 5 commit engine in isolation: the gain-bucket queue's
        // part-disjoint conflict-group waves (per-part FIFO scheduling on
        // `par_rounds` persistent workers) must reproduce the serial
        // queue drain bit-for-bit — moves, per-pass cover sums, and the
        // full refined owner table (fingerprinted) — at 1 vs 8 workers.
        // k = 64 makes the waves wide enough that the 8-worker run really
        // dispatches them instead of inlining everything.
        let g = hep::gen::GraphSpec::ChungLu { n: 2_000, m: 16_000, gamma: 2.2 }.generate(seed);
        let probe = hep::core::RefineProbe::build(&g, 10.0, k, 4);
        let (a, b) = serial_vs_parallel(|| probe.run(passes));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.stale_skips, 0, "no stale queue entry may survive revalidation");
        prop_assert!(a.moves > 0, "probe workload must exercise the commit");
    }

    #[test]
    fn csr_layouts_produce_identical_partitions(
        seed in 0u64..1000,
        split in prop_oneof![Just(1u32), Just(4)],
        tau in prop_oneof![Just(1.0f64), Just(10.0)],
    ) {
        // The cache-conscious degree-sorted CSR layout is a pure segment
        // permutation: every adjacency list reads back identically, so
        // the full pipeline's assignment sequence must be bit-identical
        // to the input-order layout on both the serial and split paths.
        let g = hep::gen::GraphSpec::ChungLu { n: 1_500, m: 12_000, gamma: 2.2 }.generate(seed);
        let run = |layout: hep::core::CsrLayout| {
            let mut config = hep::core::HepConfig::with_tau(tau);
            config.split_factor = split;
            config.csr_layout = layout;
            let hep = hep::core::Hep { config };
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            let report = hep.partition_with_report(&g, 8, &mut sink).unwrap();
            (sink.assignments, report.partition_sizes)
        };
        let input_order = run(hep::core::CsrLayout::InputOrder);
        let degree_sorted = run(hep::core::CsrLayout::DegreeSorted);
        prop_assert_eq!(input_order, degree_sorted, "layouts diverged at split={}", split);
    }

    #[test]
    fn mmap_and_buffered_file_pipelines_are_bit_identical(seed in 0u64..1000) {
        // The PassSource contract: the mmap and buffered backends feed the
        // degree pass, the budgeted CSR sweeps, and phase-2 streaming the
        // exact same byte stream, so the full file pipeline is bit-identical
        // across backends at every (threads × split) configuration.
        use hep::graph::{BinaryEdgeFile, IoMode};
        let g = hep::gen::GraphSpec::ChungLu { n: 1_200, m: 10_000, gamma: 2.2 }.generate(seed);
        let mut path = std::env::temp_dir();
        path.push(format!("hep_io_determinism_{}_{}.hepb", std::process::id(), seed));
        let file = BinaryEdgeFile::write(&path, &g).unwrap();
        for threads in [1usize, 8] {
            for split in [1u32, 4] {
                let run = |mode: IoMode| {
                    hep::par::with_threads(threads, || {
                        let mut config = hep::core::HepConfig::with_tau(10.0);
                        config.split_factor = split;
                        config.io_mode = mode;
                        let hep = hep::core::Hep { config };
                        let mut sink = hep::graph::partitioner::CollectedAssignment::default();
                        let report = hep.partition_file_with_report(&file, 8, &mut sink).unwrap();
                        (sink.assignments, report.partition_sizes)
                    })
                };
                let (buffered, mmap) = (run(IoMode::Buffered), run(IoMode::Mmap));
                prop_assert_eq!(
                    buffered, mmap,
                    "io backends diverged at threads={}, split={}", threads, split
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_and_v2_files_round_trip_to_identical_partitions(seed in 0u64..1000) {
        // Format compatibility: a graph written as checksum-free HEPB v1
        // and as checksummed v2 must load to the same edge sequence and
        // drive the pipeline to the same assignment.
        use hep::graph::BinaryEdgeFile;
        let g = hep::gen::GraphSpec::ChungLu { n: 800, m: 6_000, gamma: 2.2 }.generate(seed);
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("hep_v1_roundtrip_{}_{}.hepb", std::process::id(), seed));
        let p2 = dir.join(format!("hep_v2_roundtrip_{}_{}.hepb", std::process::id(), seed));
        let f1 = BinaryEdgeFile::write_v1(&p1, &g).unwrap();
        let f2 = BinaryEdgeFile::write(&p2, &g).unwrap();
        prop_assert_eq!(f1.format_version(), 1u32);
        prop_assert_eq!(f2.format_version(), 2u32);
        let run = |file: &BinaryEdgeFile| {
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            hep::core::Hep::with_tau(10.0).partition_file_with_report(file, 8, &mut sink).unwrap();
            sink.assignments
        };
        prop_assert_eq!(f1.load().unwrap().edges, f2.load().unwrap().edges);
        prop_assert_eq!(run(&f1), run(&f2), "v1 and v2 partitions diverged");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn refinement_preserves_caps_and_never_increases_rf(
        seed in 0u64..1000,
        split in 2u32..5,
        passes in 1u32..4,
        community in any::<bool>(),
    ) {
        // Phase-level safety of the FM refinement: the serial balanced
        // caps hold exactly after every pass, the per-pass cover sums
        // (the replication-factor numerator) never increase, and the
        // refined phase never beats the caps by dropping edges.
        let g = if community {
            hep::gen::community::community_web(
                hep::gen::community::CommunityParams::weblike(2_000, 16_000),
                seed,
            )
        } else {
            hep::gen::GraphSpec::ChungLu { n: 2_000, m: 16_000, gamma: 2.2 }.generate(seed)
        };
        let k = 8;
        let phase1 = |refine_passes: u32| {
            let csr = hep::graph::PrunedCsr::build(&g, 10.0);
            let inmem = csr.num_inmem_edges();
            let mut config = hep::core::HepConfig::with_tau(10.0);
            config.split_factor = split;
            config.refine_passes = refine_passes;
            let mut sink = hep::graph::partitioner::CountingSink::default();
            let result = hep::core::run_nepp_par(csr, k, &config, &mut sink);
            (result, inmem)
        };
        let (unrefined, inmem) = phase1(0);
        let (refined, _) = phase1(passes);
        // Caps: every part within the serial balanced bounds, same load
        // vector as the unrefined pack (filler compensation is exact).
        prop_assert_eq!(refined.sizes.iter().sum::<u64>(), inmem);
        prop_assert_eq!(&refined.sizes, &unrefined.sizes);
        let ideal = inmem / k as u64;
        for (p, &sz) in refined.sizes.iter().enumerate() {
            prop_assert!(sz <= ideal + 1, "p{} size {} sizes {:?}", p, sz, refined.sizes);
        }
        // RF numerator: refined covers never exceed the unrefined ones,
        // and the recorded per-pass sums are non-increasing.
        let cover_sum = |r: &hep::core::NeppResult| -> u64 {
            r.s_sets.iter().map(|s| s.count_ones() as u64).sum()
        };
        prop_assert!(cover_sum(&refined) <= cover_sum(&unrefined));
        let sums = &refined.stats.refine_cover_sums;
        if inmem > 0 {
            prop_assert!(!sums.is_empty(), "refinement ran: cover sums recorded");
            prop_assert_eq!(*sums.first().unwrap(), cover_sum(&unrefined));
            prop_assert_eq!(*sums.last().unwrap(), cover_sum(&refined));
            prop_assert!(sums.windows(2).all(|w| w[1] <= w[0]), "{:?}", sums);
        }
    }

    #[test]
    fn refined_split_rf_within_15_percent_of_serial_at_hep10(
        seed in 0u64..1000,
        community in any::<bool>(),
    ) {
        // The acceptance bound this subsystem exists for: at HEP-10 /
        // split_factor = 4 (where the unrefined pack measured +15-40%
        // over the serial path), the refined pipeline's replication
        // factor stays within 15% of serial NE++ on both graph families.
        let g = if community {
            hep::gen::community::community_web(
                hep::gen::community::CommunityParams::weblike(3_000, 24_000),
                seed,
            )
        } else {
            hep::gen::GraphSpec::ChungLu { n: 3_000, m: 24_000, gamma: 2.2 }.generate(seed)
        };
        let k = 8;
        let run = |split_factor: u32, refine_passes: u32| {
            let mut config = hep::core::HepConfig::with_tau(10.0);
            config.split_factor = split_factor;
            config.refine_passes = refine_passes;
            let hep = hep::core::Hep { config };
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            hep.partition_with_report(&g, k, &mut sink).unwrap();
            hep::metrics::PartitionMetrics::from_assignment(k, g.num_vertices, &sink)
                .replication_factor()
        };
        let serial_rf = run(1, 0);
        let refined_rf = run(4, hep::core::DEFAULT_REFINE_PASSES);
        prop_assert!(
            refined_rf <= serial_rf * 1.15,
            "refined split rf {} exceeds serial rf {} by more than 15%",
            refined_rf,
            serial_rf
        );
    }

    #[test]
    fn subpartitioned_nepp_exactly_once_with_capacity_and_rf(
        seed in 0u64..1000,
        split in 2u32..5,
        community in any::<bool>(),
    ) {
        // Quality and safety of the split expansion against the serial
        // path, on the two graph families the paper's contrast rests on:
        // exactly-once coverage, the serial balanced capacity bounds, and
        // replication factor within 10% of serial NE++ (measured at HEP-1,
        // where phase 1 and phase 2 share the load; see EXPERIMENTS.md for
        // the HEP-10 trade-off numbers).
        use hep::graph::Edge;
        let g = if community {
            hep::gen::community::community_web(
                hep::gen::community::CommunityParams::weblike(3_000, 24_000),
                seed,
            )
        } else {
            hep::gen::GraphSpec::ChungLu { n: 3_000, m: 24_000, gamma: 2.2 }.generate(seed)
        };
        let k = 8;
        let run = |split_factor: u32| {
            let mut config = hep::core::HepConfig::with_tau(1.0);
            config.split_factor = split_factor;
            let hep = hep::core::Hep { config };
            let mut sink = hep::graph::partitioner::CollectedAssignment::default();
            let report = hep.partition_with_report(&g, k, &mut sink).unwrap();
            let rf = hep::metrics::PartitionMetrics::from_assignment(k, g.num_vertices, &sink)
                .replication_factor();
            (sink, report, rf)
        };
        let (_, _, serial_rf) = run(1);
        let (sink, report, split_rf) = run(split);
        // Exactly-once over the whole pipeline.
        let mut seen: Vec<Edge> = sink.assignments.iter().map(|(e, _)| e.canonical()).collect();
        seen.sort_unstable();
        let mut expect: Vec<Edge> = g.edges.iter().map(|e| e.canonical()).collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
        prop_assert_eq!(report.partition_sizes.iter().sum::<u64>(), g.num_edges());
        // NE++ capacity bounds at the phase level: the pack stage enforces
        // the serial balanced caps exactly (every part <= ideal + 1).
        let csr = hep::graph::PrunedCsr::build(&g, 1.0);
        let inmem = csr.num_inmem_edges();
        let mut config = hep::core::HepConfig::with_tau(1.0);
        config.split_factor = split;
        let mut nepp_sink = hep::graph::partitioner::CountingSink::default();
        let phase1 = hep::core::run_nepp_par(csr, k, &config, &mut nepp_sink);
        prop_assert_eq!(phase1.sizes.iter().sum::<u64>(), inmem);
        let ideal = inmem / k as u64;
        for (p, &sz) in phase1.sizes.iter().enumerate() {
            prop_assert!(sz <= ideal + 1, "p{} size {} over cap, sizes {:?}", p, sz, phase1.sizes);
        }
        // Replication factor within 10% of the serial path.
        prop_assert!(
            split_rf <= serial_rf * 1.10,
            "split {} rf {} exceeds serial rf {} by more than 10%",
            split,
            split_rf,
            serial_rf
        );
    }

    #[test]
    fn batched_stream_pipeline_is_thread_and_batch_invariant(
        seed in 0u64..1000,
        split in prop_oneof![Just(1u32), Just(4)],
    ) {
        // The PR 8 tentpole invariant at the pipeline level: the batched
        // phase-2 engine is bit-identical at every (thread count × batch
        // size) combination, including batch = 1 (a frozen snapshot per
        // edge) and 65536 (the validate() ceiling's neighborhood). τ = 1
        // sends a large h2h stream through phase 2.
        let g = hep::gen::GraphSpec::ChungLu { n: 1_500, m: 12_000, gamma: 2.2 }.generate(seed);
        let run = |threads: usize, batch: usize| {
            hep::par::with_threads(threads, || {
                let mut config = hep::core::HepConfig::with_tau(1.0);
                config.split_factor = split;
                config.stream_batch = batch;
                let hep = hep::core::Hep { config };
                let mut sink = hep::graph::partitioner::CollectedAssignment::default();
                let report = hep.partition_with_report(&g, 8, &mut sink).unwrap();
                (sink.assignments, report.partition_sizes)
            })
        };
        let baseline = run(1, 1);
        for threads in [1usize, 8] {
            for batch in [1usize, 64, 65536] {
                let other = run(threads, batch);
                prop_assert_eq!(
                    &baseline, &other,
                    "pipeline diverged at threads={}, batch={}", threads, batch
                );
            }
        }
    }

    #[test]
    fn batched_stream_engine_matches_serial_bitwise(
        seed in 0u64..1000,
        k in prop_oneof![Just(4u32), Just(32)],
        batch in prop_oneof![Just(1usize), Just(64), Just(65536)],
    ) {
        // The engine-level contract behind the pipeline property: on a raw
        // hub-skewed h2h stream with NE++-like seeded replicas and uneven
        // loads, the batched engine reproduces `stream_h2h_serial` exactly —
        // assignment sequence, final loads, and every replica-set word — at
        // 1 and 8 workers.
        use hep::ds::DenseBitset;
        let n = 300u32;
        let m = 4_000usize;
        let mut rng = hep::ds::SplitMix64::new(seed);
        let mut edges = Vec::with_capacity(m);
        let mut degrees = vec![0u32; n as usize];
        for _ in 0..m {
            let a = (rng.next_below(n as u64) * rng.next_below(n as u64) / n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            edges.push(hep::graph::Edge::new(a, b));
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        }
        let mut seed_sets: Vec<DenseBitset> =
            (0..k).map(|_| DenseBitset::new(n as usize)).collect();
        let mut sizes = vec![0u64; k as usize];
        for v in 0..60u32 {
            seed_sets[(v % k) as usize].set(v);
        }
        for (p, s) in sizes.iter_mut().enumerate() {
            *s = (p as u64) * 29;
        }
        let mut serial_sink = hep::graph::partitioner::CollectedAssignment::default();
        let serial = hep::core::stream_h2h_serial(
            edges.iter().copied(),
            &degrees,
            seed_sets.clone(),
            sizes.clone(),
            2 * m as u64,
            1.1,
            1.05,
            &mut serial_sink,
        )
        .unwrap();
        for threads in [1usize, 8] {
            let (assignments, state) = hep::par::with_threads(threads, || {
                let mut sink = hep::graph::partitioner::CollectedAssignment::default();
                let state = hep::core::stream_h2h(
                    edges.iter().copied(),
                    &degrees,
                    seed_sets.clone(),
                    sizes.clone(),
                    2 * m as u64,
                    1.1,
                    1.05,
                    batch,
                    &mut sink,
                )
                .unwrap();
                (sink.assignments, state)
            });
            prop_assert_eq!(&assignments, &serial_sink.assignments);
            for p in 0..k {
                prop_assert_eq!(state.load(p), serial.load(p), "load {} diverged", p);
                prop_assert_eq!(
                    state.replica_sets()[p as usize].words(),
                    serial.replica_sets()[p as usize].words(),
                    "replica set {} diverged", p
                );
            }
        }
    }

    #[test]
    fn sparse_replica_index_agrees_with_dense_after_every_batch(
        seed in 0u64..1000,
        batch in prop_oneof![Just(1usize), Just(37), Just(512)],
    ) {
        // The sparse-index layer in isolation: after every committed batch
        // the per-vertex rows must describe exactly the replica sets a dense
        // replay of the emitted assignments produces — no leaked candidate
        // from a scoring pass, no dropped commit.
        use std::cell::RefCell;
        use std::rc::Rc;
        let n = 200u32;
        let k = 8u32;
        let g = hep::gen::GraphSpec::ChungLu { n, m: 2_000, gamma: 2.2 }.generate(seed);
        let degrees = g.degrees();
        let seed_sets: Vec<hep::ds::DenseBitset> =
            (0..k).map(|_| hep::ds::DenseBitset::new(n as usize)).collect();
        let sizes = vec![0u64; k as usize];
        let log: Rc<RefCell<Vec<(u32, u32, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sink = {
            let log = Rc::clone(&log);
            move |u: u32, v: u32, p: u32| log.borrow_mut().push((u, v, p))
        };
        let mut replay = hep::baselines::ReplicaState::new(k, n);
        let mut replayed = 0usize;
        let mut batches = 0usize;
        hep::core::stream_h2h_with_inspect(
            g.edges.iter().copied(),
            &degrees,
            seed_sets,
            sizes,
            g.num_edges(),
            1.1,
            1.05,
            batch,
            &mut sink,
            &mut |index, loads| {
                batches += 1;
                let assignments = log.borrow();
                for &(u, v, p) in &assignments[replayed..] {
                    replay.assign(u, v, p);
                }
                replayed = assignments.len();
                for p in 0..k {
                    assert_eq!(loads[p as usize], replay.load(p), "loads diverge on {p}");
                }
                for v in 0..n {
                    for p in 0..k {
                        assert_eq!(
                            index.is_replicated(v, p),
                            replay.is_replicated(v, p),
                            "replica ({v}, {p}) diverges after batch"
                        );
                    }
                }
            },
        )
        .unwrap();
        prop_assert_eq!(batches, (g.num_edges() as usize).div_ceil(batch));
    }
}
