//! Full-pipeline integration: file IO → partitioning → metrics → processing
//! simulation → paging simulation, crossing every crate boundary the way the
//! experiment harness does.

use hep::graph::partitioner::CollectedAssignment;
use hep::graph::{EdgeList, EdgePartitioner};
use hep::metrics::PartitionMetrics;

#[test]
fn file_roundtrip_then_partition_then_process() {
    // 1. Generate and persist a graph, as a user would receive it.
    let g = hep::gen::GraphSpec::ChungLu { n: 800, m: 7000, gamma: 2.2 }.generate(3);
    let mut path = std::env::temp_dir();
    path.push(format!("hep_pipeline_{}.bin", std::process::id()));
    g.write_binary(&path).expect("write");
    let mut loaded = EdgeList::read_binary(&path).expect("read");
    std::fs::remove_file(&path).ok();
    loaded.canonicalize();
    assert_eq!(loaded.edges, g.edges, "generator output is already canonical");

    // 2. Partition with HEP, collecting metrics and the assignment at once.
    let k = 8;
    let mut metrics = PartitionMetrics::new(k, loaded.num_vertices);
    let mut collected = CollectedAssignment::default();
    {
        let mut tee =
            hep::graph::partitioner::TeeSink { first: &mut metrics, second: &mut collected };
        hep::core::Hep::with_tau(10.0).partition(&loaded, k, &mut tee).expect("partition");
    }
    hep::metrics::validate_assignment(&loaded, &collected, k).expect("valid partitioning");
    assert!(metrics.replication_factor() >= 1.0);

    // 3. Load onto the simulated cluster; its independently computed RF must
    //    agree with the metrics sink.
    let dg = hep::procsim::DistributedGraph::load(&loaded, &collected, k);
    assert!((dg.replication_factor() - metrics.replication_factor()).abs() < 1e-12);

    // 4. Run all three workloads; results must be graph properties, not
    //    partitioning properties.
    let cost = hep::procsim::ClusterCost::default();
    let (ranks, _) = hep::procsim::pagerank(&dg, 10, &cost);
    assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    let (labels, _) = hep::procsim::connected_components(&dg, &cost);
    assert_eq!(labels.len(), loaded.num_vertices as usize);
    let bfs_cost = hep::procsim::bfs(&dg, &[0, 1], &cost);
    assert!(bfs_cost.sim_seconds > 0.0);
}

#[test]
fn trace_feeds_paging_simulator() {
    let g = hep::gen::GraphSpec::ChungLu { n: 1000, m: 9000, gamma: 2.1 }.generate(5);
    let mut config = hep::core::HepConfig::with_tau(10.0);
    config.record_trace = true;
    let hep_p = hep::core::Hep { config };
    let mut sink = CollectedAssignment::default();
    let report = hep_p.partition_with_report(&g, 8, &mut sink).expect("partition");
    let trace = report.trace.expect("trace requested");
    assert!(!trace.is_empty());
    // Paging: generous memory -> almost no faults; tiny memory -> many.
    let pages = (report.inmem_edges * 2).div_ceil(1024).max(1);
    let generous = hep::pagesim::replay_trace(&trace, 1024, pages);
    let tiny = hep::pagesim::replay_trace(&trace, 1024, 1);
    assert!(generous.faults <= pages);
    assert!(tiny.faults > generous.faults * 2);
    // The modeled runtime ordering follows.
    assert!(tiny.modeled_runtime(0.1, 1e-4) > generous.modeled_runtime(0.1, 1e-4));
}

#[test]
fn report_is_consistent_with_metrics() {
    let g = hep::gen::dataset("TW", 1).expect("TW exists").generate();
    let k = 16;
    let mut metrics = PartitionMetrics::new(k, g.num_vertices);
    let report = hep::core::Hep::with_tau(1.0)
        .partition_with_report(&g, k, &mut metrics)
        .expect("partition");
    assert_eq!(report.inmem_edges + report.h2h_edges, g.num_edges());
    assert_eq!(report.partition_sizes.iter().sum::<u64>(), g.num_edges());
    assert_eq!(report.partition_sizes, metrics.edge_counts);
    // The paper-formula footprint counts the pruned column array; the real
    // heap usage of the CSR must be within a small constant of it (u64
    // index arrays vs. the paper's 4-byte fields).
    assert!(report.csr_heap_bytes as u64 >= report.footprint_paper_bytes / 4);
}

#[test]
fn streaming_state_visible_in_partition_sizes() {
    // At tau = 1 a large share of edges go through the streaming phase; the
    // final sizes must still respect the alpha cap.
    let g = hep::gen::dataset("OK", 1).expect("OK exists").generate();
    let k = 32;
    let mut metrics = PartitionMetrics::new(k, g.num_vertices);
    let report = hep::core::Hep::with_tau(1.0)
        .partition_with_report(&g, k, &mut metrics)
        .expect("partition");
    assert!(report.h2h_edges > 0, "tau=1 must stream some edges on OK");
    let cap = (1.05 * g.num_edges() as f64 / k as f64).ceil() as u64;
    assert!(report.partition_sizes.iter().all(|&s| s <= cap));
}
