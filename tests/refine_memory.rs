//! Alloc-tracked property: the FM refinement's actual peak memory stays
//! under [`hep::core::estimate_refine_overhead_bytes`]'s accounting, and
//! that accounting no longer scales as `k × |V|`.
//!
//! This binary installs the counting allocator (the reproduction's max-RSS
//! proxy, see `hep::metrics::alloc_track`), so it must stay its own
//! integration-test binary: the tracked regions are process-wide.

use hep::core::{estimate_refine_overhead_bytes, RefineProbe};
use hep::metrics::alloc_track::{self, CountingAlloc};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One measured region at a time: the peak counter is process-wide.
static REGION: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Peak live bytes of a refinement run — sparse boundary index, owner
    /// table, filler pools, proposal buffers, commit queue, parallel-commit
    /// overlays — stay within the planner's estimate, across the k and
    /// split grid the estimate must hold for. The probe's synthetic
    /// striped round-robin assignment maximizes boundary structure, which
    /// is the conservative direction for a peak-memory bound.
    #[test]
    fn refine_peak_memory_within_planner_estimate(
        seed in 0u64..200,
        k in prop_oneof![Just(8u32), Just(32), Just(128)],
        split in prop_oneof![Just(2u32), Just(4)],
    ) {
        let tau = 10.0;
        let g = hep::gen::GraphSpec::ChungLu { n: 3_000, m: 24_000, gamma: 2.2 }.generate(seed);
        let estimate = estimate_refine_overhead_bytes(&g, tau, k);
        let probe = RefineProbe::build(&g, tau, k, split);
        prop_assert!(probe.num_edges() > 0);
        let guard = REGION.lock().unwrap_or_else(|p| p.into_inner());
        alloc_track::reset_peak();
        let baseline = alloc_track::current_bytes();
        let run = probe.run(2);
        let peak = alloc_track::peak_bytes().saturating_sub(baseline) as u64;
        drop(guard);
        prop_assert!(run.moves > 0, "probe workload must exercise the commit path");
        prop_assert_eq!(run.stale_skips, 0, "no stale queue entry may survive revalidation");
        prop_assert!(run.cover_sums.windows(2).all(|w| w[1] <= w[0]), "{:?}", run.cover_sums);
        prop_assert!(
            peak <= estimate,
            "refine peak {} bytes exceeds planner estimate {} (k={}, split={})",
            peak, estimate, k, split
        );
    }
}

/// The point of the sparse index: the planner accounting saturates in k
/// instead of growing as k × |V| — at large k it undercuts the dense
/// matrix it replaced by an order of magnitude.
#[test]
fn estimate_saturates_in_k() {
    let g = hep::gen::GraphSpec::ChungLu { n: 3_000, m: 24_000, gamma: 2.2 }.generate(1);
    let at = |k| estimate_refine_overhead_bytes(&g, 10.0, k);
    let dense = |k: u64| k * 3_000 * 4; // the pre-PR-5 k×|V| boundary index alone
    assert!(at(1024) < dense(1024), "sparse accounting must beat the dense matrix at large k");
    let grown = at(4096) - at(2048);
    assert_eq!(grown, 0, "estimate must stop growing once k exceeds every degree");
}
