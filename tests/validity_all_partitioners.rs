//! Cross-crate validity: every partitioner in the workspace must assign
//! every edge exactly once, to an in-range partition, on every graph family
//! — including adversarial shapes (stars, cliques, disconnected components)
//! and randomly generated graphs.

use hep::gen::GraphSpec;
use hep::graph::partitioner::CollectedAssignment;
use hep::graph::{EdgeList, EdgePartitioner};
use hep::metrics::validate_assignment;
use proptest::prelude::*;

fn all_partitioners() -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(hep::core::Hep::with_tau(100.0)),
        Box::new(hep::core::Hep::with_tau(10.0)),
        Box::new(hep::core::Hep::with_tau(1.0)),
        Box::new(hep::core::SimpleHybrid::with_tau(2.0)),
        Box::new(hep::baselines::Ne::default()),
        Box::new(hep::baselines::Sne::default()),
        Box::new(hep::baselines::Dne::default()),
        Box::new(hep::baselines::MetisLike::default()),
        Box::new(hep::baselines::Hdrf::default()),
        Box::new(hep::baselines::Greedy::default()),
        Box::new(hep::baselines::Adwise::default()),
        Box::new(hep::baselines::Dbh::default()),
        Box::new(hep::baselines::Grid::default()),
        Box::new(hep::baselines::RandomStreaming::default()),
    ]
}

fn check_all(graph: &EdgeList, k: u32) {
    for mut p in all_partitioners() {
        let mut sink = CollectedAssignment::default();
        p.partition(graph, k, &mut sink).unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
        if let Err(msg) = validate_assignment(graph, &sink, k) {
            panic!("{} invalid on k={k}: {msg}", p.name());
        }
    }
}

#[test]
fn valid_on_power_law_graph() {
    let g = GraphSpec::ChungLu { n: 700, m: 6000, gamma: 2.1 }.generate(1);
    check_all(&g, 8);
}

#[test]
fn valid_on_community_web_graph() {
    let g = GraphSpec::CommunityWeb(hep::gen::community::CommunityParams::weblike(1500, 9000))
        .generate(2);
    check_all(&g, 5);
}

#[test]
fn valid_on_star() {
    check_all(&GraphSpec::Star { n: 200 }.generate(0), 4);
}

#[test]
fn valid_on_dense_graph() {
    check_all(&GraphSpec::Complete { n: 40 }.generate(0), 4);
}

#[test]
fn valid_on_disconnected_components() {
    check_all(&GraphSpec::DisconnectedCliques { count: 15, size: 6 }.generate(0), 6);
}

#[test]
fn valid_on_path_with_many_partitions() {
    check_all(&GraphSpec::Path { n: 120 }.generate(0), 16);
}

#[test]
fn valid_with_more_partitions_than_edges() {
    let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (3, 4)]);
    check_all(&g, 12);
}

#[test]
fn valid_on_rmat() {
    let g = GraphSpec::Rmat { scale: 10, m: 5000, params: hep::gen::rmat::RmatParams::graph500() }
        .generate(4);
    check_all(&g, 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs, random k: the full roster stays valid.
    #[test]
    fn valid_on_arbitrary_graphs(
        pairs in proptest::collection::vec((0u32..80, 0u32..80), 1..300),
        k in 2u32..10,
    ) {
        let mut g = EdgeList::from_pairs(pairs);
        g.canonicalize();
        prop_assume!(!g.edges.is_empty());
        check_all(&g, k);
    }
}
