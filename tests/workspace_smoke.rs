//! Facade wiring smoke test: every partitioner the workspace ships must be
//! constructible through `hep::prelude::*` and runnable through the
//! `EdgePartitioner` object interface. Catches re-export regressions (a
//! renamed type, a dropped `pub use`, a facade module that stops compiling)
//! before anything subtler does.

use hep::prelude::*;

/// A graph small enough that even quadratic baselines finish instantly.
fn tiny_graph() -> EdgeList {
    hep::gen::GraphSpec::ChungLu { n: 200, m: 800, gamma: 2.2 }.generate(11)
}

#[test]
fn every_partitioner_is_constructible_and_runs_via_prelude() {
    let graph = tiny_graph();
    let k = 4;
    let partitioners: Vec<(&str, Box<dyn EdgePartitioner>)> = vec![
        ("HEP", Box::new(Hep::with_tau(10.0))),
        ("HEP(config)", Box::new(Hep { config: HepConfig::default() })),
        ("SimpleHybrid", Box::new(SimpleHybrid::with_tau(10.0))),
        ("NE", Box::new(Ne::default())),
        ("SNE", Box::new(Sne::default())),
        ("HDRF", Box::new(Hdrf::default())),
        ("Greedy", Box::new(Greedy::default())),
        ("ADWISE", Box::new(Adwise::default())),
        ("DBH", Box::new(Dbh::default())),
        ("Grid", Box::new(Grid::default())),
        ("DNE", Box::new(Dne::default())),
        ("METIS-like", Box::new(MetisLike::default())),
        ("Random", Box::new(RandomStreaming::default())),
    ];
    for (name, mut p) in partitioners {
        let mut metrics = PartitionMetrics::new(k, graph.num_vertices);
        p.partition(&graph, k, &mut metrics)
            .unwrap_or_else(|e| panic!("{name} failed on the smoke graph: {e}"));
        let rf = metrics.replication_factor();
        assert!(rf >= 1.0, "{name}: replication factor {rf} < 1");
    }
}

#[test]
fn facade_modules_resolve() {
    // One load-bearing symbol per re-exported crate, so a broken module
    // alias fails here by name.
    let _ = hep::ds::SplitMix64::new(1);
    let _ = hep::graph::EdgeList::from_pairs([(0, 1)]);
    let _ = hep::gen::GraphSpec::ChungLu { n: 4, m: 4, gamma: 2.0 };
    let _ = hep::metrics::Table::new(["a"]);
    let _ = hep::core::HepConfig::default();
    let _ = hep::baselines::standard_baselines();
    let _ = hep::procsim::ClusterCost::default();
    let _ = hep::pagesim::LruPageCache::new(16);
    let _ = hep::hyper::power_law_hypergraph(50, 100, 3, 5);
    let _: fn(&str) -> Option<hep::gen::Dataset> = |n| hep::gen::dataset(n, 1);
}

#[test]
fn error_type_is_exported_and_matchable() {
    let graph = tiny_graph();
    let mut metrics = PartitionMetrics::new(0, graph.num_vertices);
    match Hep::with_tau(10.0).partition(&graph, 0, &mut metrics) {
        Err(GraphError::InvalidPartitionCount { k: 0 }) => {}
        other => panic!("expected InvalidPartitionCount for k = 0, got {other:?}"),
    }
}
